// Overload shedding under open-loop Poisson arrivals: the metric that
// matters for the 20-50 ms ad-tech decision window is not closed-loop q/s
// but what happens when offered load EXCEEDS capacity — a robust server
// sheds the excess in O(1) and keeps answering the admitted stream inside
// its budget ("shed, don't collapse"); a fragile one lets the queue grow
// until every answer is late.
//
// Method: estimate capacity with a closed-loop warmup pass (which also
// fills the prepared-query cache), then replay the 1080-question paper
// stream through ConcurrentServer::AskAsync at 0.5x/1x/2x/4x the estimate
// with exponential inter-arrivals (deterministic RNG). Every request
// carries deadline = scheduled-arrival + budget; arrivals never wait for
// completions (open loop). Per load level: p50/p99/p999 completion latency,
// goodput (answers inside the budget / wall time), shed and expiry rates.
//
// Gates (exit non-zero on violation; the CI smoke step relies on this):
//   * goodput at 2x offered load >= 70% of goodput at 1x
//   * p99 latency of answered requests at 2x within the budget
//
// Emits BENCH_overload_shed.json.
//
// Usage: overload_shed [--quick] [budget_ms]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/deadline.h"
#include "common/rng.h"
#include "core/ask_types.h"
#include "eval/experiments.h"
#include "serve/concurrent_server.h"

namespace {

using cqads::Deadline;
using Clock = Deadline::Clock;

struct LevelResult {
  double multiplier = 0.0;
  double offered_qps = 0.0;
  std::size_t requests = 0;
  std::size_t answered = 0;   ///< ok, full work
  std::size_t degraded = 0;   ///< ok, partials cut short
  std::size_t in_budget = 0;  ///< ok completions inside the budget
  std::size_t deadline_exceeded = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
  double wall_secs = 0.0;
  double goodput_qps = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0;  ///< ok completions
};

double Percentile(std::vector<double>* sorted_in_place, double q) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqads;
  bool quick = false;
  double budget_ms = 25.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      budget_ms = std::atof(argv[i]);
    }
  }
  const auto budget = std::chrono::microseconds(
      static_cast<std::int64_t>(budget_ms * 1000.0));

  auto world = bench::BuildPaperWorld();
  const core::CqadsEngine& engine = world->engine();

  auto generated = eval::GenerateSurveyQuestions(*world, 80, 40, 990);
  std::vector<std::string> stream;
  for (const auto& [domain, qs] : generated) {
    for (const auto& q : qs) stream.push_back(q.text);
  }
  const std::size_t passes = quick ? 1 : 3;

  // Capacity estimate: closed-loop pooled serving over the full stream
  // (first pass doubles as the warmup that fills the prepared cache). The
  // same server then serves every open-loop level, cache warm throughout.
  serve::ConcurrentServer::Options options;
  options.num_workers = 4;
  options.enable_cache = true;
  // Admission bound: a full queue must drain well inside one budget at
  // estimated capacity, so admitted requests keep their deadline reachable.
  // Sized after the capacity run below; start unbounded for the estimate.
  serve::ConcurrentServer warm_server(&engine, options);
  (void)warm_server.AskBatch(stream);  // cache fill, untimed
  const auto cap_start = Clock::now();
  auto warm_results = warm_server.AskBatch(stream);
  const double cap_secs =
      std::chrono::duration<double>(Clock::now() - cap_start).count();
  std::size_t warm_failures = 0;
  for (const auto& r : warm_results) {
    if (!r.ok()) ++warm_failures;
  }
  const double capacity_qps =
      cap_secs > 0.0 ? static_cast<double>(stream.size()) / cap_secs : 1.0;

  const std::size_t max_queue = std::max<std::size_t>(
      4, static_cast<std::size_t>(capacity_qps * budget_ms / 1000.0 * 0.5));
  options.max_queue = max_queue;
  serve::ConcurrentServer server(&engine, options);
  (void)server.AskBatch(stream);  // fill THIS server's cache too

  bench::PrintHeader("overload shedding (open-loop Poisson arrivals)");
  std::printf("stream: %zu unique questions x %zu passes/level, budget %.1f "
              "ms, est. capacity %.0f q/s, max_queue %zu, workers %zu\n",
              stream.size(), passes, budget_ms, capacity_qps, max_queue,
              options.num_workers);
  bench::PrintRule();
  std::printf("%6s %12s %9s %9s %9s %7s %7s %9s %9s %9s\n", "load",
              "offered q/s", "goodput", "answered", "degraded", "dlx",
              "shed", "p50 ms", "p99 ms", "p999 ms");
  bench::PrintRule();

  const std::vector<double> multipliers = {0.5, 1.0, 2.0, 4.0};
  std::vector<LevelResult> levels;

  for (double mult : multipliers) {
    LevelResult level;
    level.multiplier = mult;
    level.offered_qps = mult * capacity_qps;
    level.requests = stream.size() * passes;

    // Pre-draw the arrival schedule (exponential inter-arrivals,
    // deterministic seed per level) so the driver loop does no RNG work.
    Rng rng(0xDEADBEEF + static_cast<std::uint64_t>(mult * 8.0));
    std::vector<Clock::duration> schedule(level.requests);
    double t_secs = 0.0;
    for (std::size_t k = 0; k < level.requests; ++k) {
      const double u = rng.UniformReal(1e-12, 1.0);
      t_secs += -std::log(u) / level.offered_qps;
      schedule[k] = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(t_secs));
    }

    // Per-request outcome slots: each callback writes its own index; the
    // completion counter's final load synchronizes the reads below.
    enum class Outcome : char { kPending, kAnswered, kDegraded, kDeadline,
                                kShed, kError };
    std::vector<Outcome> outcomes(level.requests, Outcome::kPending);
    std::vector<double> latency_ms(level.requests, 0.0);
    std::atomic<std::size_t> completed{0};

    const auto start = Clock::now();
    for (std::size_t k = 0; k < level.requests; ++k) {
      const auto arrival = start + schedule[k];
      std::this_thread::sleep_until(arrival);  // no-op when behind: open loop
      const Deadline deadline = Deadline::At(arrival + budget);
      server.AskAsync(
          stream[k % stream.size()], deadline,
          [&outcomes, &latency_ms, &completed, k, arrival](
              Result<core::AskResult> r) {
            latency_ms[k] = std::chrono::duration<double, std::milli>(
                                Clock::now() - arrival)
                                .count();
            if (r.ok()) {
              outcomes[k] = r.value().degraded ? Outcome::kDegraded
                                               : Outcome::kAnswered;
            } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
              outcomes[k] = Outcome::kDeadline;
            } else if (r.status().code() == StatusCode::kOverloaded) {
              outcomes[k] = Outcome::kShed;
            } else {
              outcomes[k] = Outcome::kError;
            }
            completed.fetch_add(1, std::memory_order_release);
          });
    }
    while (completed.load(std::memory_order_acquire) < level.requests) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    level.wall_secs =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::vector<double> ok_latencies;
    for (std::size_t k = 0; k < level.requests; ++k) {
      switch (outcomes[k]) {
        case Outcome::kAnswered:
          ++level.answered;
          break;
        case Outcome::kDegraded:
          ++level.degraded;
          break;
        case Outcome::kDeadline:
          ++level.deadline_exceeded;
          break;
        case Outcome::kShed:
          ++level.shed;
          break;
        default:
          ++level.errors;
          break;
      }
      if (outcomes[k] == Outcome::kAnswered ||
          outcomes[k] == Outcome::kDegraded) {
        ok_latencies.push_back(latency_ms[k]);
        if (latency_ms[k] <= budget_ms) ++level.in_budget;
      }
    }
    level.goodput_qps = level.wall_secs > 0.0
                            ? static_cast<double>(level.in_budget) /
                                  level.wall_secs
                            : 0.0;
    {
      std::vector<double> tmp = ok_latencies;
      level.p50_ms = Percentile(&tmp, 0.50);
    }
    {
      std::vector<double> tmp = ok_latencies;
      level.p99_ms = Percentile(&tmp, 0.99);
    }
    level.p999_ms = Percentile(&ok_latencies, 0.999);

    std::printf("%5.1fx %12.0f %8.0f/s %9zu %9zu %7zu %7zu %9.2f %9.2f "
                "%9.2f\n",
                mult, level.offered_qps, level.goodput_qps, level.answered,
                level.degraded, level.deadline_exceeded, level.shed,
                level.p50_ms, level.p99_ms, level.p999_ms);
    levels.push_back(level);
  }
  bench::PrintRule();

  const auto find_level = [&](double mult) -> const LevelResult& {
    for (const auto& l : levels) {
      if (l.multiplier == mult) return l;
    }
    return levels.front();
  };
  const LevelResult& at1 = find_level(1.0);
  const LevelResult& at2 = find_level(2.0);
  const double goodput_ratio =
      at1.goodput_qps > 0.0 ? at2.goodput_qps / at1.goodput_qps : 0.0;

  auto server_stats = server.stats();
  bench::BenchJson json("overload_shed");
  json.Add("budget_ms", budget_ms);
  json.Add("capacity_qps", capacity_qps);
  json.Add("max_queue", max_queue);
  json.Add("passes", passes);
  json.Add("warm_failures", warm_failures);
  for (const auto& l : levels) {
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "x%.1f_", l.multiplier);
    json.Add(std::string(prefix) + "offered_qps", l.offered_qps);
    json.Add(std::string(prefix) + "goodput_qps", l.goodput_qps);
    json.Add(std::string(prefix) + "answered", l.answered);
    json.Add(std::string(prefix) + "degraded", l.degraded);
    json.Add(std::string(prefix) + "deadline_exceeded", l.deadline_exceeded);
    json.Add(std::string(prefix) + "shed", l.shed);
    json.Add(std::string(prefix) + "errors", l.errors);
    json.Add(std::string(prefix) + "p50_ms", l.p50_ms);
    json.Add(std::string(prefix) + "p99_ms", l.p99_ms);
    json.Add(std::string(prefix) + "p999_ms", l.p999_ms);
  }
  json.Add("goodput_2x_over_1x", goodput_ratio);
  json.Add("expired_in_queue",
           static_cast<std::size_t>(server_stats.expired_in_queue));
  json.Add("max_queue_age_ms", server_stats.max_queue_age_micros / 1000.0);
  json.Write();

  bool fail = false;
  if (warm_failures > 0) {
    std::printf("FAIL: %zu requests errored during the capacity run\n",
                warm_failures);
    fail = true;
  }
  if (goodput_ratio < 0.70) {
    std::printf("FAIL: goodput at 2x load is %.0f%% of 1x (gate: >= 70%%) — "
                "the server is collapsing under overload, not shedding\n",
                goodput_ratio * 100.0);
    fail = true;
  }
  if (at2.p99_ms > budget_ms) {
    std::printf("FAIL: p99 of answered requests at 2x load is %.2f ms, over "
                "the %.1f ms budget — admitted requests are being served "
                "late\n",
                at2.p99_ms, budget_ms);
    fail = true;
  }
  if (!fail) {
    std::printf("overload gates pass: goodput(2x)/goodput(1x) = %.2f, "
                "answered p99 at 2x = %.2f ms (budget %.1f ms)\n",
                goodput_ratio, at2.p99_ms, budget_ms);
  }
  return fail ? 1 : 0;
}
