// Figure 5: P@1, P@5, and MRR of the five ranking approaches over 40 test
// questions (5 per domain) judged by simulated appraisers (~886 responses).
// Paper: CQAds best on all three metrics; FAQFinder lowest except Random;
// CS-jobs is CQAds' weakest domain (appraisers judged by personal
// expertise).
#include "bench_util.h"
#include "eval/experiments.h"

int main() {
  using namespace cqads;
  auto world = bench::BuildPaperWorld();
  // 5 questions per domain x 8 domains; ~22 appraiser responses per
  // question (886 / 40).
  auto result = eval::RunRanking(*world, 5, 22, 886);

  bench::PrintHeader("Figure 5: ranking quality of partially-matched answers");
  std::printf("questions used: %zu; appraiser responses: %zu\n",
              result.questions_used, result.appraiser_responses);
  bench::PrintRule();
  std::printf("%-12s %8s %8s %8s\n", "approach", "P@1", "P@5", "MRR");
  bench::PrintRule();
  const char* order[] = {"CQAds", "AIMQ", "Cosine", "FAQFinder", "Random"};
  for (const char* name : order) {
    auto it = result.scores.find(name);
    if (it == result.scores.end()) continue;
    std::printf("%-12s %8.3f %8.3f %8.3f\n", name, it->second.p_at_1,
                it->second.p_at_5, it->second.mrr);
  }
  bench::PrintRule();
  std::printf("(paper's shape: CQAds > AIMQ > Cosine > FAQFinder > Random "
              "on all three metrics)\n");

  std::printf("\nCQAds per domain (§5.5.3: CS-jobs weakest — appraisers "
              "judge by personal expertise):\n");
  std::printf("%-16s %8s %8s %8s\n", "domain", "P@1", "P@5", "MRR");
  bench::PrintRule();
  for (const auto& [domain, s] : result.cqads_per_domain) {
    std::printf("%-16s %8.3f %8.3f %8.3f\n", domain.c_str(), s.p_at_1,
                s.p_at_5, s.mrr);
  }
  return 0;
}
