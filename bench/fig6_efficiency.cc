// Figure 6: average query processing time of CQAds and the four compared
// ranking approaches over the 650 survey questions. Paper: Random is
// fastest (no similarity computation); CQAds is faster than AIMQ, cosine,
// and FAQFinder because it retrieves exact matches first and only ranks
// partial answers when needed.
#include "bench_util.h"
#include "eval/experiments.h"

int main() {
  using namespace cqads;
  auto world = bench::BuildPaperWorld();
  auto questions = eval::GenerateSurveyQuestions(*world, 80, 82, 660);
  auto result = eval::RunEfficiency(*world, questions, 661);

  bench::PrintHeader("Figure 6: average query processing time");
  std::printf("questions timed per approach: %zu\n", result.questions);
  bench::PrintRule();
  std::printf("%-12s %14s\n", "approach", "avg ms/query");
  bench::PrintRule();
  const char* order[] = {"Random", "CQAds", "Cosine", "AIMQ", "FAQFinder"};
  for (const char* name : order) {
    auto it = result.avg_ms.find(name);
    if (it == result.avg_ms.end()) continue;
    std::printf("%-12s %14.3f\n", name, it->second);
  }
  bench::PrintRule();
  std::printf("(paper's shape: Random fastest; CQAds faster than AIMQ, "
              "cosine similarity, and FAQFinder)\n");
  return 0;
}
