// Figure 6: average query processing time of CQAds and the four compared
// ranking approaches over the survey questions. Paper: Random is fastest
// (no similarity computation); CQAds is faster than AIMQ, cosine, and
// FAQFinder because it retrieves exact matches first and only ranks partial
// answers when needed.
//
// This bench also pins the planner/ColumnStore rearchitecture: the whole
// question stream is answered once through the cost-aware planner and once
// through the seed §4.3 Type-rank executor; any canonical-answer mismatch
// fails the run (non-zero exit — the CI smoke step relies on it), and the
// two ask times quantify the planner's speedup over the PR 2 baseline.
//
// Usage: fig6_efficiency [--quick]
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ask_types.h"
#include "core/cqads_engine.h"
#include "eval/experiments.h"

int main(int argc, char** argv) {
  using namespace cqads;
  using Clock = std::chrono::steady_clock;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  auto world = bench::BuildPaperWorld();
  auto questions = eval::GenerateSurveyQuestions(
      *world, quick ? 20 : 80, quick ? 20 : 82, 660);

  // ---- planner vs seed-executor parity + ask-time comparison ----------
  std::vector<std::pair<std::string, std::string>> stream;  // domain, text
  for (const auto& [domain, qs] : questions) {
    for (const auto& q : qs) stream.emplace_back(domain, q.text);
  }

  auto ask_all = [&](std::vector<std::string>* out) {
    auto start = Clock::now();
    for (const auto& [domain, text] : stream) {
      auto r = world->engine().AskInDomain(domain, text);
      out->push_back(r.ok() ? core::CanonicalAskResultString(r.value())
                            : "ERROR");
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  core::EngineOptions planner_options;  // defaults: use_planner = true
  core::EngineOptions seed_options;
  seed_options.use_planner = false;

  // Untimed warmup so the first timed mode does not absorb one-time costs
  // (pipeline singletons, allocator, page cache).
  for (const auto& [domain, text] : stream) {
    (void)world->engine().AskInDomain(domain, text);
  }

  world->mutable_engine().SetOptions(seed_options);
  std::vector<std::string> seed_answers;
  const double seed_secs = ask_all(&seed_answers);

  world->mutable_engine().SetOptions(planner_options);
  std::vector<std::string> planned_answers;
  const double planned_secs = ask_all(&planned_answers);

  // Partition-sharded stores (4 shards per 500-ad domain), serial morsels:
  // the partitioned execution path must stay canonical-answer-identical to
  // the seed executor on the full ask stream.
  core::EngineOptions partitioned_options;
  partitioned_options.partition_rows = 128;
  world->mutable_engine().SetOptions(partitioned_options);
  std::vector<std::string> partitioned_answers;
  const double partitioned_secs = ask_all(&partitioned_answers);

  // Term-substrate parity: the whole stream once more with the interned
  // substrate forced OFF (legacy pointer-trie tagging + string-keyed Eq. 5
  // scoring). Every mode above ran with the substrate ON (the default), so
  // any byte difference here is a substrate bug.
  core::EngineOptions legacy_options;
  legacy_options.use_term_substrate = false;
  world->mutable_engine().SetOptions(legacy_options);
  std::vector<std::string> legacy_answers;
  const double legacy_secs = ask_all(&legacy_answers);

  // Vector-kernel parity: the stream once more with block-at-a-time
  // execution and batched Eq. 5 scoring forced OFF (the scalar row-at-a-
  // time reference loops). Every mode above ran vectorized (the default),
  // so any byte difference here is a kernel bug.
  core::EngineOptions scalar_options;
  scalar_options.use_vector_kernels = false;
  world->mutable_engine().SetOptions(scalar_options);
  std::vector<std::string> scalar_answers;
  const double scalar_secs = ask_all(&scalar_answers);

  // Top-k rank parity: the stream once more with pruned top-k partial
  // ranking forced OFF (the serial collect-all + full-sort oracle). Every
  // mode above ranked through the bounded top-k path (the default), so any
  // byte difference here is a pruning/merge bug.
  core::EngineOptions fullsort_options;
  fullsort_options.use_topk_rank = false;
  world->mutable_engine().SetOptions(fullsort_options);
  std::vector<std::string> fullsort_answers;
  const double fullsort_secs = ask_all(&fullsort_answers);
  world->mutable_engine().SetOptions(planner_options);

  // Persistent-snapshot parity: save the engine, boot a second engine from
  // the file (mmap + zero-copy adoption), and serve the whole stream from
  // it. Any byte difference vs the freshly built engine is a serde bug.
  const std::string snap_path = "BENCH_fig6_parity.snap";
  std::vector<std::string> snapshot_answers;
  double snapshot_secs = 0.0;
  {
    Status st = world->engine().SaveSnapshot(snap_path);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    auto reloaded = core::CqadsEngine::OpenSnapshot(snap_path);
    if (!reloaded.ok()) {
      std::fprintf(stderr, "snapshot open failed: %s\n",
                   reloaded.status().ToString().c_str());
      return 1;
    }
    auto start = Clock::now();
    for (const auto& [domain, text] : stream) {
      auto r = reloaded.value()->AskInDomain(domain, text);
      snapshot_answers.push_back(
          r.ok() ? core::CanonicalAskResultString(r.value()) : "ERROR");
    }
    snapshot_secs = std::chrono::duration<double>(Clock::now() - start).count();
    std::remove(snap_path.c_str());
  }

  std::size_t mismatches = 0;
  std::size_t partitioned_mismatches = 0;
  std::size_t substrate_mismatches = 0;
  std::size_t vector_mismatches = 0;
  std::size_t topk_mismatches = 0;
  std::size_t snapshot_mismatches = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (seed_answers[i] != planned_answers[i]) ++mismatches;
    if (seed_answers[i] != partitioned_answers[i]) ++partitioned_mismatches;
    if (seed_answers[i] != legacy_answers[i]) ++substrate_mismatches;
    if (seed_answers[i] != scalar_answers[i]) ++vector_mismatches;
    if (seed_answers[i] != fullsort_answers[i]) ++topk_mismatches;
    if (seed_answers[i] != snapshot_answers[i]) ++snapshot_mismatches;
  }

  bench::PrintHeader("planner vs seed executor (full ask path)");
  std::printf("questions: %zu\n", stream.size());
  std::printf("seed Type-rank executor : %8.1f q/s\n",
              stream.size() / seed_secs);
  std::printf("cost-aware planner      : %8.1f q/s   speedup %.2fx\n",
              stream.size() / planned_secs, seed_secs / planned_secs);
  std::printf("partitioned (128/shard) : %8.1f q/s   speedup %.2fx\n",
              stream.size() / partitioned_secs,
              seed_secs / partitioned_secs);
  std::printf("legacy string substrate : %8.1f q/s   speedup %.2fx\n",
              stream.size() / legacy_secs, seed_secs / legacy_secs);
  std::printf("scalar (no vec kernels) : %8.1f q/s   speedup %.2fx\n",
              stream.size() / scalar_secs, seed_secs / scalar_secs);
  std::printf("full-sort rank (no topk): %8.1f q/s   speedup %.2fx\n",
              stream.size() / fullsort_secs, seed_secs / fullsort_secs);
  std::printf("reloaded snapshot       : %8.1f q/s   speedup %.2fx\n",
              stream.size() / snapshot_secs, seed_secs / snapshot_secs);
  std::printf(
      "canonical answer mismatches: planner=%zu partitioned=%zu "
      "substrate=%zu vector=%zu topk=%zu snapshot=%zu\n",
      mismatches, partitioned_mismatches, substrate_mismatches,
      vector_mismatches, topk_mismatches, snapshot_mismatches);

  // ---- the paper figure ----------------------------------------------
  auto result = eval::RunEfficiency(*world, questions, 661);

  bench::PrintHeader("Figure 6: average query processing time");
  std::printf("questions timed per approach: %zu\n", result.questions);
  bench::PrintRule();
  std::printf("%-12s %14s\n", "approach", "avg ms/query");
  bench::PrintRule();
  const char* order[] = {"Random", "CQAds", "Cosine", "AIMQ", "FAQFinder"};
  for (const char* name : order) {
    auto it = result.avg_ms.find(name);
    if (it == result.avg_ms.end()) continue;
    std::printf("%-12s %14.3f\n", name, it->second);
  }
  bench::PrintRule();
  std::printf("(paper's shape: Random fastest; CQAds faster than AIMQ, "
              "cosine similarity, and FAQFinder)\n");

  bench::BenchJson json("fig6_efficiency");
  json.Add("questions", stream.size());
  json.Add("seed_qps", stream.size() / seed_secs);
  json.Add("planner_qps", stream.size() / planned_secs);
  json.Add("partitioned_qps", stream.size() / partitioned_secs);
  json.Add("legacy_substrate_qps", stream.size() / legacy_secs);
  json.Add("scalar_kernels_qps", stream.size() / scalar_secs);
  json.Add("fullsort_rank_qps", stream.size() / fullsort_secs);
  json.Add("snapshot_qps", stream.size() / snapshot_secs);
  json.Add("planner_mismatches", mismatches);
  json.Add("partitioned_mismatches", partitioned_mismatches);
  json.Add("substrate_mismatches", substrate_mismatches);
  json.Add("vector_mismatches", vector_mismatches);
  json.Add("topk_mismatches", topk_mismatches);
  json.Add("snapshot_mismatches", snapshot_mismatches);
  for (const auto& [name, ms] : result.avg_ms) {
    json.Add("avg_ms_" + name, ms);
  }
  json.Write();

  if (mismatches + partitioned_mismatches + substrate_mismatches +
          vector_mismatches + topk_mismatches + snapshot_mismatches >
      0) {
    std::printf(
        "FAIL: answers differ from the seed executor (planner=%zu, "
        "partitioned=%zu, substrate=%zu, vector=%zu, topk=%zu, "
        "snapshot=%zu)\n",
        mismatches, partitioned_mismatches, substrate_mismatches,
        vector_mismatches, topk_mismatches, snapshot_mismatches);
    return 1;
  }
  return 0;
}
