// Table 2: top-5 ranked partially-matched answers to the running-example
// question "Find Honda Accord blue less than 15,000 dollars", with the
// similarity measure used for each answer.
#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace cqads;
  auto world = bench::BuildPaperWorld();
  const std::string question =
      "Find Honda Accord blue less than 15,000 dollars";

  auto result = world->engine().AskInDomain("cars", question);
  if (!result.ok()) {
    std::fprintf(stderr, "ask failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const auto& r = result.value();
  const auto* table = world->table("cars");

  bench::PrintHeader("Table 2: top-5 partial answers to \"" + question +
                     "\"");
  std::printf("exact matches: %zu; showing the top partially-matched "
              "answers\n", r.exact_count);
  std::printf("%-4s %-10s %-12s %-8s %-8s %-9s %s\n", "rank", "make",
              "model", "price", "color", "Rank_Sim", "similarity measure");
  bench::PrintRule();
  int rank = 0;
  for (const auto& answer : r.answers) {
    if (answer.exact) continue;
    ++rank;
    if (rank > 5) break;
    std::printf("%-4d %-10s %-12s %-8s %-8s %-9s %s\n", rank,
                table->cell(answer.row, 0).AsText().c_str(),
                table->cell(answer.row, 1).AsText().c_str(),
                table->cell(answer.row, 3).AsText().c_str(),
                table->cell(answer.row, 5).AsText().c_str(),
                FormatDouble(answer.rank_sim, 2).c_str(),
                answer.measure.c_str());
  }
  bench::PrintRule();
  std::printf("(paper's Table 2 mixes TI_Sim-on-Make-and-Model, Num_Sim-on-"
              "Price and Feat_Sim-on-Color rows;\n the generated inventory "
              "differs, but the measure mix and (N-1)+sim scoring match)\n");
  return 0;
}
