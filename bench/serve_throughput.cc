// Serving throughput: questions/sec for sequential CqadsEngine::Ask vs the
// ConcurrentServer worker pool, with and without the prepared-query cache.
// The stream replays the survey questions several times with repeats —
// heavy-traffic ad search is dominated by popular recurring questions, the
// workload the prepared-query cache targets. Verifies byte-identical
// answers (CanonicalAskResultString) across all serving modes before
// timing.
//
// Usage: serve_throughput [num_workers] [passes]
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ask_types.h"
#include "eval/experiments.h"
#include "serve/concurrent_server.h"

namespace {

using Clock = std::chrono::steady_clock;

double QuestionsPerSec(std::size_t n, Clock::duration elapsed) {
  const double secs = std::chrono::duration<double>(elapsed).count();
  return secs > 0.0 ? static_cast<double>(n) / secs : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqads;
  const std::size_t num_workers =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t passes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;

  auto world = bench::BuildPaperWorld();
  const core::CqadsEngine& engine = world->engine();

  auto generated = eval::GenerateSurveyQuestions(*world, 80, 40, 990);
  std::vector<std::string> stream;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    for (const auto& [domain, qs] : generated) {
      for (const auto& q : qs) stream.push_back(q.text);
    }
  }

  // Sequential baseline through the engine facade.
  auto seq_start = Clock::now();
  std::vector<std::string> expected;
  expected.reserve(stream.size());
  for (const auto& q : stream) {
    auto r = engine.Ask(q);
    expected.push_back(r.ok() ? core::CanonicalAskResultString(r.value())
                              : "ERROR");
  }
  const auto seq_elapsed = Clock::now() - seq_start;

  auto run_server = [&](bool enable_cache, const char* label) {
    serve::ConcurrentServer::Options options;
    options.num_workers = num_workers;
    options.enable_cache = enable_cache;
    serve::ConcurrentServer server(&engine, options);

    auto start = Clock::now();
    auto results = server.AskBatch(stream);
    const auto elapsed = Clock::now() - start;

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::string got = results[i].ok()
          ? core::CanonicalAskResultString(results[i].value())
          : "ERROR";
      if (got != expected[i]) ++mismatches;
    }
    auto stats = server.cache_stats();
    std::printf("%-22s %10.1f q/s   %6.2fx   mismatches=%zu   "
                "cache h/m/e=%llu/%llu/%llu\n",
                label, QuestionsPerSec(stream.size(), elapsed),
                std::chrono::duration<double>(seq_elapsed).count() /
                    std::chrono::duration<double>(elapsed).count(),
                mismatches,
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions));
    return mismatches;
  };

  bench::PrintHeader("serving throughput (questions/sec)");
  std::printf("stream: %zu questions (%zu unique x %zu passes), workers: "
              "%zu\n",
              stream.size(), stream.size() / passes, passes, num_workers);
  bench::PrintRule();
  std::printf("%-22s %14s %8s\n", "mode", "throughput", "speedup");
  bench::PrintRule();
  std::printf("%-22s %10.1f q/s   %6.2fx\n", "sequential Ask",
              QuestionsPerSec(stream.size(), seq_elapsed), 1.0);
  std::size_t bad = 0;
  bad += run_server(false, "pooled (no cache)");
  bad += run_server(true, "pooled + cache");
  bench::PrintRule();
  if (bad > 0) {
    std::printf("FAIL: %zu results differ from sequential baseline\n", bad);
    return 1;
  }
  std::printf("all pooled/cached results byte-identical to sequential Ask\n");
  return 0;
}
