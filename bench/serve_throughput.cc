// Serving throughput: questions/sec for sequential CqadsEngine::Ask vs the
// ConcurrentServer worker pool, with and without the prepared-query cache,
// and with partition-sharded stores (morsel-parallel plan execution).
// The stream replays the survey questions several times with repeats —
// heavy-traffic ad search is dominated by popular recurring questions, the
// workload the prepared-query cache targets. Verifies byte-identical
// answers (CanonicalAskResultString) across all serving modes before
// timing, including the seed Type-rank executor (the PR 2 baseline the
// planner/ColumnStore speedup is measured against) — any mismatch exits
// non-zero, which the CI smoke step relies on. Emits
// BENCH_serve_throughput.json for the CI perf artifact.
//
// Usage: serve_throughput [num_workers] [passes]
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ask_types.h"
#include "eval/experiments.h"
#include "serve/concurrent_server.h"
#include "serve/worker_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double QuestionsPerSec(std::size_t n, Clock::duration elapsed) {
  const double secs = std::chrono::duration<double>(elapsed).count();
  return secs > 0.0 ? static_cast<double>(n) / secs : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqads;
  const std::size_t num_workers =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t passes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;

  auto world = bench::BuildPaperWorld();
  const core::CqadsEngine& engine = world->engine();

  auto generated = eval::GenerateSurveyQuestions(*world, 80, 40, 990);
  std::vector<std::string> stream;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    for (const auto& [domain, qs] : generated) {
      for (const auto& q : qs) stream.push_back(q.text);
    }
  }

  // Untimed warmup (allocator, page cache) so the first timed mode does
  // not absorb the cold-start cost on shared machines.
  for (std::size_t i = 0; i < stream.size() / passes; ++i) {
    (void)engine.Ask(stream[i]);
  }

  // PR 2 baseline: sequential Ask through the seed Type-rank executor.
  core::EngineOptions seed_options;
  seed_options.use_planner = false;
  world->mutable_engine().SetOptions(seed_options);
  auto seed_start = Clock::now();
  std::vector<std::string> seed_expected;
  seed_expected.reserve(stream.size());
  for (const auto& q : stream) {
    auto r = engine.Ask(q);
    seed_expected.push_back(r.ok() ? core::CanonicalAskResultString(r.value())
                                   : "ERROR");
  }
  const auto seed_elapsed = Clock::now() - seed_start;
  world->mutable_engine().SetOptions(core::EngineOptions());

  // Sequential baseline through the engine facade (cost-aware planner).
  auto seq_start = Clock::now();
  std::vector<std::string> expected;
  expected.reserve(stream.size());
  for (const auto& q : stream) {
    auto r = engine.Ask(q);
    expected.push_back(r.ok() ? core::CanonicalAskResultString(r.value())
                              : "ERROR");
  }
  const auto seq_elapsed = Clock::now() - seq_start;

  // The planner/ColumnStore path must answer the whole stream byte-
  // identically to the seed executor.
  std::size_t planner_mismatches = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (expected[i] != seed_expected[i]) ++planner_mismatches;
  }

  double last_qps = 0.0;
  auto run_server = [&](bool enable_cache, const char* label) {
    serve::ConcurrentServer::Options options;
    options.num_workers = num_workers;
    options.enable_cache = enable_cache;
    serve::ConcurrentServer server(&engine, options);

    auto start = Clock::now();
    auto results = server.AskBatch(stream);
    const auto elapsed = Clock::now() - start;

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::string got = results[i].ok()
          ? core::CanonicalAskResultString(results[i].value())
          : "ERROR";
      if (got != expected[i]) ++mismatches;
    }
    auto stats = server.cache_stats();
    last_qps = QuestionsPerSec(stream.size(), elapsed);
    std::printf("%-22s %10.1f q/s   %6.2fx   mismatches=%zu   "
                "cache h/m/e=%llu/%llu/%llu\n",
                label, last_qps,
                std::chrono::duration<double>(seed_elapsed).count() /
                    std::chrono::duration<double>(elapsed).count(),
                mismatches,
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions));
    return mismatches;
  };

  bench::PrintHeader("serving throughput (questions/sec)");
  std::printf("stream: %zu questions (%zu unique x %zu passes), workers: "
              "%zu\n",
              stream.size(), stream.size() / passes, passes, num_workers);
  bench::PrintRule();
  std::printf("%-22s %14s %8s   (speedup vs PR 2 seed-executor baseline)\n",
              "mode", "throughput", "speedup");
  bench::PrintRule();
  std::printf("%-22s %10.1f q/s   %6.2fx   (PR 2 baseline)\n",
              "sequential (seed exec)",
              QuestionsPerSec(stream.size(), seed_elapsed), 1.0);
  std::printf("%-22s %10.1f q/s   %6.2fx   planner mismatches=%zu\n",
              "sequential (planner)",
              QuestionsPerSec(stream.size(), seq_elapsed),
              std::chrono::duration<double>(seed_elapsed).count() /
                  std::chrono::duration<double>(seq_elapsed).count(),
              planner_mismatches);
  std::size_t bad = planner_mismatches;
  bad += run_server(false, "pooled (no cache)");
  const double pooled_qps = last_qps;
  bad += run_server(true, "pooled + cache");
  const double pooled_cache_qps = last_qps;

  // Partition-sharded stores: 4 shards per domain (500 ads / 128), plan
  // morsels stolen by the dedicated exec pool, with the prepared cache on.
  // (Paper-scale stores sit below kMinRowsForParallelExec, so shard plans
  // execute inline per query; the pool still covers inter-query fan-out.)
  constexpr std::size_t kPartitionRows = 128;
  serve::WorkerPool exec_pool(num_workers);
  core::EngineOptions part_options;
  part_options.partition_rows = kPartitionRows;
  part_options.exec_parallelism = num_workers;
  part_options.exec_runner = &exec_pool;
  world->mutable_engine().SetOptions(part_options);
  std::size_t partition_count = 0;
  if (const auto* rt = engine.runtime(engine.Domains().front());
      rt != nullptr && rt->partitions != nullptr) {
    partition_count = rt->partitions->num_partitions();
  }
  bad += run_server(true, "partitioned + cache");
  const double partitioned_qps = last_qps;
  world->mutable_engine().SetOptions(core::EngineOptions());

  bench::PrintRule();
  bench::BenchJson json("serve_throughput");
  json.Add("workers", num_workers);
  json.Add("questions", stream.size());
  json.Add("partition_rows", kPartitionRows);
  json.Add("partitions_per_domain", partition_count);
  json.Add("seed_qps", QuestionsPerSec(stream.size(), seed_elapsed));
  json.Add("planner_qps", QuestionsPerSec(stream.size(), seq_elapsed));
  json.Add("pooled_qps", pooled_qps);
  json.Add("pooled_cache_qps", pooled_cache_qps);
  json.Add("partitioned_cache_qps", partitioned_qps);
  json.Add("mismatches", bad);
  json.Write();

  if (bad > 0) {
    std::printf("FAIL: %zu results differ across serving paths\n", bad);
    return 1;
  }
  std::printf(
      "all planner/pooled/cached/partitioned results byte-identical to the "
      "seed executor\n");
  return 0;
}
