// Network serving under open-loop Poisson arrivals: the overload_shed
// experiment moved onto real sockets. A NetServer fronts the engine over a
// Unix-domain socket; an open-loop load generator (this binary) replays the
// 1080-question paper stream through persistent pipelined connections at
// 0.5x/1x/2x/4x the measured capacity, every request carrying its own
// latency budget on the wire. Client-observed completion latencies land in
// log-linear histograms (common/histogram.h) — p50/p99/p999 without
// per-request arrays — and every completion is classified
// answered/degraded/deadline-exceeded/shed from the wire status.
//
// Two gate families (exit non-zero on violation; CI smoke relies on this):
//   * PARITY: every response's canonical answer string must be
//     byte-identical to in-process engine.Ask — over Unix AND TCP. The
//     socket hop may add latency, never change an answer.
//   * OVERLOAD: goodput at 2x offered load >= 70% of goodput at 1x, and
//     p99 of answered requests at 2x stays within the budget — shedding
//     must happen at admission, through the socket, not by collapse.
//
// Emits BENCH_net_serve.json.
//
// Usage: net_serve [--quick] [budget_ms]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/deadline.h"
#include "common/histogram.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/ask_types.h"
#include "eval/experiments.h"
#include "serve/net/net_client.h"
#include "serve/net/net_server.h"

namespace {

using cqads::Deadline;
using cqads::LatencyHistogram;
using cqads::serve::net::NetClient;
using cqads::serve::net::NetServer;
using cqads::serve::net::Request;
using Clock = Deadline::Clock;

constexpr std::size_t kConns = 4;  ///< persistent connections per level

cqads::serve::net::Request MakeAsk(std::uint64_t id,
                                   const std::string& question,
                                   double budget_ms) {
  Request request;
  request.id = id;
  request.method = "ask";
  request.question = question;
  request.budget_ms = budget_ms;
  return request;
}

struct LevelResult {
  double multiplier = 0.0;
  double offered_qps = 0.0;
  std::size_t requests = 0;
  std::size_t answered = 0;
  std::size_t degraded = 0;
  std::size_t in_budget = 0;
  std::size_t deadline_exceeded = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
  double wall_secs = 0.0;
  double goodput_qps = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0;  ///< ok completions
};

/// One open-loop Poisson level against a running server: a dispatcher
/// thread sends at pre-drawn arrival times round-robin across kConns
/// pipelined connections; one receiver thread per connection correlates
/// responses by id and records client-observed latency from the SCHEDULED
/// arrival (queueing delay counts — that is the open-loop point).
LevelResult RunLevel(const std::string& unix_path,
                     const std::vector<std::string>& stream,
                     std::size_t passes, double capacity_qps, double mult,
                     double budget_ms, double wire_budget_ms) {
  LevelResult level;
  level.multiplier = mult;
  level.offered_qps = mult * capacity_qps;
  level.requests = stream.size() * passes;

  // Pre-draw the whole schedule (deterministic seed per level) so neither
  // the dispatcher nor the receivers do RNG or share mutable timestamps.
  cqads::Rng rng(0xC0FFEE + static_cast<std::uint64_t>(mult * 8.0));
  std::vector<Clock::duration> schedule(level.requests);
  double t_secs = 0.0;
  for (std::size_t k = 0; k < level.requests; ++k) {
    const double u = rng.UniformReal(1e-12, 1.0);
    t_secs += -std::log(u) / level.offered_qps;
    schedule[k] = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(t_secs));
  }

  std::vector<NetClient> clients;
  for (std::size_t c = 0; c < kConns; ++c) {
    auto client = NetClient::ConnectUnix(unix_path);
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      std::exit(1);
    }
    clients.push_back(std::move(client).value());
  }

  // Request k rides connection k % kConns with id k+1; its receiver owns
  // outcome slot k exclusively. Receivers run until the dispatcher is done
  // AND they have seen every ask sent on their connection; the trailing
  // ping (id 0) guarantees a wake-up after `done` flips, so the check
  // cannot strand a receiver in a blocking Receive.
  enum : char { kPending, kAnswered, kDegraded, kDeadline, kShed, kError };
  std::vector<char> outcomes(level.requests, kPending);
  std::array<std::atomic<std::size_t>, kConns> sent{};
  std::atomic<bool> done{false};
  std::array<LatencyHistogram, kConns> ok_latency;
  std::array<std::size_t, kConns> in_budget{};
  std::array<std::size_t, kConns> receive_errors{};

  const auto start = Clock::now();
  std::vector<std::thread> receivers;
  for (std::size_t c = 0; c < kConns; ++c) {
    receivers.emplace_back([&, c] {
      std::size_t received = 0;
      for (;;) {
        if (done.load(std::memory_order_acquire) &&
            received == sent[c].load(std::memory_order_acquire)) {
          break;
        }
        auto response = clients[c].Receive();
        if (!response.ok()) {
          ++receive_errors[c];
          break;
        }
        if (response.value().id == 0) continue;  // the ping sentinel
        const std::size_t k = response.value().id - 1;
        ++received;
        const double latency_ms =
            std::chrono::duration<double, std::milli>(
                Clock::now() - (start + schedule[k]))
                .count();
        if (response.value().status == "ok") {
          outcomes[k] = response.value().degraded ? kDegraded : kAnswered;
          ok_latency[c].Record(latency_ms * 1000.0);
          if (latency_ms <= budget_ms) ++in_budget[c];
        } else if (response.value().status == "deadline_exceeded") {
          outcomes[k] = kDeadline;
        } else if (response.value().status == "overloaded") {
          outcomes[k] = kShed;
        } else {
          outcomes[k] = kError;
        }
      }
    });
  }

  for (std::size_t k = 0; k < level.requests; ++k) {
    std::this_thread::sleep_until(start + schedule[k]);  // open loop
    const std::size_t c = k % kConns;
    if (!clients[c]
             .Send(MakeAsk(k + 1, stream[k % stream.size()], wire_budget_ms))
             .ok()) {
      outcomes[k] = kError;  // receiver never sees it; slot stays ours
      continue;
    }
    sent[c].fetch_add(1, std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (std::size_t c = 0; c < kConns; ++c) {
    Request ping;
    ping.id = 0;
    ping.method = "ping";
    (void)clients[c].Send(ping);
  }
  for (auto& receiver : receivers) receiver.join();
  level.wall_secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  LatencyHistogram merged;
  for (std::size_t c = 0; c < kConns; ++c) {
    merged.Merge(ok_latency[c]);
    level.in_budget += in_budget[c];
    level.errors += receive_errors[c];
  }
  for (std::size_t k = 0; k < level.requests; ++k) {
    switch (outcomes[k]) {
      case kAnswered: ++level.answered; break;
      case kDegraded: ++level.degraded; break;
      case kDeadline: ++level.deadline_exceeded; break;
      case kShed: ++level.shed; break;
      default: ++level.errors; break;
    }
  }
  level.goodput_qps =
      level.wall_secs > 0.0
          ? static_cast<double>(level.in_budget) / level.wall_secs
          : 0.0;
  level.p50_ms = merged.PercentileMicros(0.50) / 1000.0;
  level.p99_ms = merged.PercentileMicros(0.99) / 1000.0;
  level.p999_ms = merged.PercentileMicros(0.999) / 1000.0;
  return level;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqads;
  bool quick = false;
  double budget_ms = 25.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      budget_ms = std::atof(argv[i]);
    }
  }

  auto world = bench::BuildPaperWorld();
  const core::CqadsEngine& engine = world->engine();

  auto generated = eval::GenerateSurveyQuestions(*world, 80, 40, 990);
  std::vector<std::string> stream;
  for (const auto& [domain, qs] : generated) {
    for (const auto& q : qs) stream.push_back(q.text);
  }
  const std::size_t passes = quick ? 1 : 3;
  // Deadline propagation with a transport allowance: the CLIENT's SLO is
  // budget_ms end to end, but the deadline the server can enforce starts
  // when it reads the frame — socket buffers and the client's own threads
  // are outside it. So the wire carries 80% of the budget (the standard
  // RPC-fleet convention), reserving the rest for the hop; the goodput and
  // p99 gates below still judge against the full client-side budget.
  const double wire_budget_ms = budget_ms * 0.8;

  // In-process ground truth, once per unique question: the canonical
  // answer string on success, the wire status name on failure.
  std::vector<std::string> expected;
  expected.reserve(stream.size());
  for (const auto& q : stream) {
    auto r = engine.Ask(q);
    expected.push_back(
        r.ok() ? core::CanonicalAskResultString(r.value())
               : std::string("status:") +
                     serve::net::WireStatusName(r.status().code()));
  }

  const std::string socket_path =
      "/tmp/cqads_net_bench_" + std::to_string(::getpid()) + ".sock";

  bench::PrintHeader("network serving (sockets, open-loop Poisson arrivals)");

  // ---------------------------------------------------------------------
  // Phase 1 — parity + capacity, on a server with an unbounded queue.
  // ---------------------------------------------------------------------
  NetServer::Options parity_options;
  parity_options.unix_path = socket_path;
  parity_options.tcp_port = 0;
  parity_options.serve.num_workers = 4;
  auto parity_server = NetServer::Start(&engine, parity_options);
  if (!parity_server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 parity_server.status().ToString().c_str());
    return 1;
  }

  std::size_t parity_mismatches = 0;
  std::size_t parity_checked = 0;
  {
    auto client = NetClient::ConnectUnix(socket_path);
    if (!client.ok()) {
      std::fprintf(stderr, "unix connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    // The full replayed stream (1080 requests at paper scale), sequential:
    // every single response is byte-compared against in-process Ask.
    for (std::size_t pass = 0; pass < passes; ++pass) {
      for (std::size_t i = 0; i < stream.size(); ++i) {
        auto response =
            client.value().Call(MakeAsk(++parity_checked, stream[i], 0.0));
        if (!response.ok()) {
          std::fprintf(stderr, "parity call failed: %s\n",
                       response.status().ToString().c_str());
          ++parity_mismatches;
          continue;
        }
        const std::string got =
            response.value().ok()
                ? response.value().canonical
                : std::string("status:") + response.value().status;
        if (got != expected[i]) ++parity_mismatches;
      }
    }
  }
  std::size_t tcp_checked = 0;
  {
    // TCP takes a representative slice (the transports share every byte of
    // framing/codec code; the difference under test is the socket family).
    auto client =
        NetClient::ConnectTcp("127.0.0.1", parity_server.value()->tcp_port());
    if (!client.ok()) {
      std::fprintf(stderr, "tcp connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    const std::size_t take = std::min<std::size_t>(quick ? 40 : 120,
                                                   stream.size());
    for (std::size_t i = 0; i < take; ++i, ++tcp_checked) {
      auto response = client.value().Call(MakeAsk(i + 1, stream[i], 0.0));
      const std::string got =
          response.ok()
              ? (response.value().ok()
                     ? response.value().canonical
                     : std::string("status:") + response.value().status)
              : "transport_error";
      if (got != expected[i]) ++parity_mismatches;
    }
  }
  std::printf("parity: %zu unix + %zu tcp responses compared, %zu "
              "mismatches\n",
              parity_checked, tcp_checked, parity_mismatches);

  // Closed-loop capacity estimate: kConns connections issuing sequential
  // calls over disjoint stream slices (also warms the prepared cache).
  double capacity_qps = 0.0;
  {
    const auto cap_start = Clock::now();
    std::vector<std::thread> threads;
    std::atomic<std::size_t> failures{0};
    for (std::size_t c = 0; c < kConns; ++c) {
      threads.emplace_back([&, c] {
        auto client = NetClient::ConnectUnix(socket_path);
        if (!client.ok()) {
          failures.fetch_add(1000);
          return;
        }
        for (std::size_t i = c; i < stream.size(); i += kConns) {
          if (!client.value().Call(MakeAsk(i + 1, stream[i], 0.0)).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    const double cap_secs =
        std::chrono::duration<double>(Clock::now() - cap_start).count();
    if (failures.load() > 0) {
      std::fprintf(stderr, "capacity run had %zu failures\n", failures.load());
      return 1;
    }
    capacity_qps = cap_secs > 0.0
                       ? static_cast<double>(stream.size()) / cap_secs
                       : 1.0;
  }
  parity_server.value()->Stop();

  // ---------------------------------------------------------------------
  // Phase 2 — open-loop levels, on a server with a budget-matched queue.
  // ---------------------------------------------------------------------
  // Admission bound: a full queue must drain in about a THIRD of the
  // budget at estimated capacity — unlike the in-process overload bench,
  // a networked request also spends budget in socket buffers and the
  // client-side schedule, so an admitted request whose queue wait alone
  // eats half the budget would be answered late as the client measures it.
  const std::size_t max_queue = std::max<std::size_t>(
      4,
      static_cast<std::size_t>(capacity_qps * wire_budget_ms / 1000.0 / 3.0));
  NetServer::Options options;
  options.unix_path = socket_path;
  options.serve.num_workers = 4;
  options.serve.max_queue = max_queue;
  auto server = NetServer::Start(&engine, options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  {
    // This server's prepared cache starts cold: one untimed closed-loop
    // pass fills it so the levels measure serving, not first-parse costs.
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kConns; ++c) {
      threads.emplace_back([&, c] {
        auto client = NetClient::ConnectUnix(socket_path);
        if (!client.ok()) return;
        for (std::size_t i = c; i < stream.size(); i += kConns) {
          (void)client.value().Call(MakeAsk(i + 1, stream[i], 0.0));
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  std::printf("stream: %zu unique questions x %zu passes/level, budget %.1f "
              "ms (%.1f ms on the wire), est. capacity %.0f q/s, max_queue "
              "%zu, workers %zu, %zu connections\n",
              stream.size(), passes, budget_ms, wire_budget_ms, capacity_qps,
              max_queue, options.serve.num_workers, kConns);
  bench::PrintRule();
  std::printf("%6s %12s %9s %9s %9s %7s %7s %9s %9s %9s\n", "load",
              "offered q/s", "goodput", "answered", "degraded", "dlx",
              "shed", "p50 ms", "p99 ms", "p999 ms");
  bench::PrintRule();

  const std::vector<double> multipliers =
      quick ? std::vector<double>{1.0, 2.0}
            : std::vector<double>{0.5, 1.0, 2.0, 4.0};
  std::vector<LevelResult> levels;
  for (double mult : multipliers) {
    LevelResult level = RunLevel(socket_path, stream, passes, capacity_qps,
                                 mult, budget_ms, wire_budget_ms);
    std::printf("%5.1fx %12.0f %8.0f/s %9zu %9zu %7zu %7zu %9.2f %9.2f "
                "%9.2f\n",
                mult, level.offered_qps, level.goodput_qps, level.answered,
                level.degraded, level.deadline_exceeded, level.shed,
                level.p50_ms, level.p99_ms, level.p999_ms);
    levels.push_back(level);
  }
  bench::PrintRule();

  // One statsz scrape through the wire before shutdown: the same numbers an
  // operator's probe would see.
  double statsz_frames_in = 0.0, statsz_shed = 0.0;
  {
    auto client = NetClient::ConnectUnix(socket_path);
    if (client.ok()) {
      Request statsz;
      statsz.id = 1;
      statsz.method = "statsz";
      auto response = client.value().Call(statsz);
      if (response.ok() && response.value().ok()) {
        auto doc = JsonValue::Parse(response.value().stats_json);
        if (doc.ok()) {
          statsz_shed = doc.value().GetNumber("shed");
          const JsonValue* net = doc.value().Find("net");
          if (net != nullptr) statsz_frames_in = net->GetNumber("frames_in");
        }
      }
    }
  }
  const auto net_stats = server.value()->net_stats();
  server.value()->Stop();

  const auto find_level = [&](double mult) -> const LevelResult& {
    for (const auto& l : levels) {
      if (l.multiplier == mult) return l;
    }
    return levels.front();
  };
  const LevelResult& at1 = find_level(1.0);
  const LevelResult& at2 = find_level(2.0);
  const double goodput_ratio =
      at1.goodput_qps > 0.0 ? at2.goodput_qps / at1.goodput_qps : 0.0;

  bench::BenchJson json("net_serve");
  json.Add("budget_ms", budget_ms);
  json.Add("wire_budget_ms", wire_budget_ms);
  json.Add("capacity_qps", capacity_qps);
  json.Add("max_queue", max_queue);
  json.Add("passes", passes);
  json.Add("connections", kConns);
  json.Add("parity_checked", parity_checked + tcp_checked);
  json.Add("parity_mismatches", parity_mismatches);
  for (const auto& l : levels) {
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "x%.1f_", l.multiplier);
    json.Add(std::string(prefix) + "offered_qps", l.offered_qps);
    json.Add(std::string(prefix) + "goodput_qps", l.goodput_qps);
    json.Add(std::string(prefix) + "answered", l.answered);
    json.Add(std::string(prefix) + "degraded", l.degraded);
    json.Add(std::string(prefix) + "deadline_exceeded", l.deadline_exceeded);
    json.Add(std::string(prefix) + "shed", l.shed);
    json.Add(std::string(prefix) + "errors", l.errors);
    json.Add(std::string(prefix) + "p50_ms", l.p50_ms);
    json.Add(std::string(prefix) + "p99_ms", l.p99_ms);
    json.Add(std::string(prefix) + "p999_ms", l.p999_ms);
  }
  json.Add("goodput_2x_over_1x", goodput_ratio);
  json.Add("net_frames_in", static_cast<std::size_t>(net_stats.frames_in));
  json.Add("net_frames_out", static_cast<std::size_t>(net_stats.frames_out));
  json.Add("net_accepted", static_cast<std::size_t>(net_stats.accepted));
  json.Add("statsz_frames_in", statsz_frames_in);
  json.Add("statsz_shed", statsz_shed);
  json.Write();

  bool fail = false;
  if (parity_mismatches > 0) {
    std::printf("FAIL: %zu of %zu networked responses differ from "
                "in-process Ask — the socket hop changed an answer\n",
                parity_mismatches, parity_checked + tcp_checked);
    fail = true;
  }
  if (goodput_ratio < 0.70) {
    std::printf("FAIL: goodput at 2x load is %.0f%% of 1x (gate: >= 70%%) — "
                "the server is collapsing under overload, not shedding\n",
                goodput_ratio * 100.0);
    fail = true;
  }
  // The histogram reports bucket midpoints with a bounded relative error of
  // 1/2^(kSubBits+1); the gate must not fail on quantization alone.
  const double p99_gate_ms =
      budget_ms * (1.0 + 1.0 / (2 << LatencyHistogram::kSubBits));
  if (at2.p99_ms > p99_gate_ms) {
    std::printf("FAIL: p99 of answered requests at 2x load is %.2f ms, over "
                "the %.1f ms budget — admitted requests are being served "
                "late\n",
                at2.p99_ms, budget_ms);
    fail = true;
  }
  if (!fail) {
    std::printf("net gates pass: parity %zu/%zu identical, "
                "goodput(2x)/goodput(1x) = %.2f, answered p99 at 2x = %.2f "
                "ms (budget %.1f ms)\n",
                parity_checked + tcp_checked - parity_mismatches,
                parity_checked + tcp_checked, goodput_ratio, at2.p99_ms,
                budget_ms);
  }
  return fail ? 1 : 0;
}
