// §5.3: precision / recall / F-measure of exact-match retrieval over the
// 650 survey questions. Paper: P = 93.8%, R = 92.7%, F = 93.2%; most
// questions score exactly 0% or 100%.
#include "bench_util.h"
#include "eval/experiments.h"

int main() {
  using namespace cqads;
  auto world = bench::BuildPaperWorld();
  auto questions = eval::GenerateSurveyQuestions(*world, 80, 82, 653);
  auto result = eval::RunExactMatch(*world, questions);

  bench::PrintHeader("Section 5.3: exact-match retrieval quality");
  std::printf("questions evaluated : %zu\n", result.questions_evaluated);
  bench::PrintRule();
  std::printf("%-12s %10s %10s\n", "metric", "measured", "paper");
  bench::PrintRule();
  std::printf("%-12s %9.1f%% %10s\n", "precision", result.precision * 100.0,
              "93.8%");
  std::printf("%-12s %9.1f%% %10s\n", "recall", result.recall * 100.0,
              "92.7%");
  std::printf("%-12s %9.1f%% %10s\n", "f-measure", result.f_measure * 100.0,
              "93.2%");
  bench::PrintRule();
  std::printf("all-or-nothing questions: %zu of %zu (%.1f%%)  (paper: \"most"
              " ... yield 100%% ... a few yield 0%%\")\n",
              result.all_or_nothing, result.questions_evaluated,
              100.0 * result.all_or_nothing /
                  std::max<std::size_t>(1, result.questions_evaluated));
  return 0;
}
