// Figure 2: classification accuracy of the 650 ads questions per domain.
// Paper: average accuracy in the upper nineties; Cars-for-Sale and
// Motorcycles-for-Sale lowest (upper eighties) due to shared vocabulary.
#include "bench_util.h"
#include "eval/experiments.h"

int main() {
  using namespace cqads;
  auto world = bench::BuildPaperWorld();
  // §5.1: 80 car-ads survey responses + 570 domain-survey responses
  // (~81-82 per remaining domain) = ~650 questions.
  auto questions = eval::GenerateSurveyQuestions(*world, 80, 82, 650);
  auto result = eval::RunClassification(*world, questions);

  bench::PrintHeader(
      "Figure 2: classification accuracy of ads questions (JBBSM NB)");
  std::printf("%-16s %10s %10s\n", "domain", "questions", "accuracy");
  bench::PrintRule();
  for (const auto& [domain, acc] : result.per_domain_accuracy) {
    std::printf("%-16s %10zu %9.1f%%\n", domain.c_str(),
                questions.at(domain).size(), acc * 100.0);
  }
  bench::PrintRule();
  std::printf("%-16s %10zu %9.1f%%   (paper: upper-90s average;\n", "average",
              result.total_questions, result.average_accuracy * 100.0);
  std::printf("%-16s %10s %10s    cars/motorcycles lowest)\n", "", "", "");
  return 0;
}
