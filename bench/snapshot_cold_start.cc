// Cold start: booting from a persistent snapshot vs rebuilding from source
// data. The snapshot path is open()+mmap()+adopt — no datagen, no lexicon
// compile, no index build, no classifier training — so it should be orders
// of magnitude faster. CI runs --quick and gates a conservative ≥5x floor
// (the measured margin is far larger; the floor only guards regressions
// against runner noise).
//
// Methodology: build the world once and save a snapshot; then time
//   (a) full rebuild: World::Build (datagen -> lexicon -> indexes ->
//       classifier) + first 100 answers,
//   (b) snapshot boot: CqadsEngine::OpenSnapshot + the same 100 answers.
// Where permitted, the snapshot's pages are dropped from the page cache
// (posix_fadvise DONTNEED) before the timed open, so (b) pays real I/O,
// not a warm-cache replay. Both paths answer the identical question list
// and the answers are canonical-byte-compared (exit non-zero on mismatch).
//
// Usage: snapshot_cold_start [--quick]
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ask_types.h"
#include "core/cqads_engine.h"
#include "datagen/world.h"
#include "eval/experiments.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Best-effort page-cache eviction for the snapshot file. Needs no
/// privileges (unlike drop_caches); a failure only makes the cold-start
/// number more conservative, so it is ignored.
void DropCaches(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqads;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  datagen::WorldOptions options;
  options.seed = 20111130;
  options.ads_per_domain = quick ? 200 : 500;
  options.sessions_per_domain = quick ? 600 : 1500;
  options.corpus_docs_per_domain = quick ? 60 : 150;

  // ---- one untimed build: the snapshot source and the question list -----
  const std::string path = "BENCH_snapshot_cold_start.snap";
  std::vector<std::pair<std::string, std::string>> stream;  // domain, text
  {
    auto source = datagen::World::Build(options);
    if (!source.ok()) {
      std::fprintf(stderr, "world build failed: %s\n",
                   source.status().ToString().c_str());
      return 1;
    }
    Status st = source.value()->engine().SaveSnapshot(path);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auto questions =
        eval::GenerateSurveyQuestions(*source.value(), 20, 14, 660);
    for (const auto& [domain, qs] : questions) {
      for (const auto& q : qs) {
        if (stream.size() >= 100) break;
        stream.emplace_back(domain, q.text);
      }
    }
  }  // the source world is freed here: both timed paths start from nothing

  // ---- (a) full rebuild + first 100 answers -----------------------------
  std::vector<std::string> rebuild_answers;
  const auto rebuild_start = Clock::now();
  double rebuild_first_secs = 0.0;
  {
    auto world = datagen::World::Build(options);
    if (!world.ok()) {
      std::fprintf(stderr, "rebuild failed\n");
      return 1;
    }
    bool first = true;
    for (const auto& [domain, text] : stream) {
      auto r = world.value()->engine().AskInDomain(domain, text);
      rebuild_answers.push_back(
          r.ok() ? core::CanonicalAskResultString(r.value()) : "ERROR");
      if (first) {
        rebuild_first_secs = SecondsSince(rebuild_start);
        first = false;
      }
    }
  }
  const double rebuild_secs = SecondsSince(rebuild_start);

  // ---- (b) snapshot open + the same 100 answers -------------------------
  DropCaches(path);
  std::vector<std::string> snapshot_answers;
  const auto open_start = Clock::now();
  double open_secs = 0.0, snapshot_first_secs = 0.0;
  {
    auto engine = core::CqadsEngine::OpenSnapshot(path);
    if (!engine.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    open_secs = SecondsSince(open_start);
    bool first = true;
    for (const auto& [domain, text] : stream) {
      auto r = engine.value()->AskInDomain(domain, text);
      snapshot_answers.push_back(
          r.ok() ? core::CanonicalAskResultString(r.value()) : "ERROR");
      if (first) {
        snapshot_first_secs = SecondsSince(open_start);
        first = false;
      }
    }
  }
  const double snapshot_secs = SecondsSince(open_start);

  // ---- parity gate ------------------------------------------------------
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (rebuild_answers[i] != snapshot_answers[i]) ++mismatches;
  }

  // Cold start = time to the FIRST answer (the metric a restarting serving
  // process cares about); the 100-question tail shows steady-state parity.
  const double speedup_first = rebuild_first_secs / snapshot_first_secs;
  const double speedup_total = rebuild_secs / snapshot_secs;

  bench::PrintHeader("snapshot cold start vs full rebuild");
  std::printf("questions                : %zu\n", stream.size());
  std::printf("rebuild -> first answer  : %8.3f s\n", rebuild_first_secs);
  std::printf("snapshot open            : %8.4f s\n", open_secs);
  std::printf("snapshot -> first answer : %8.4f s   speedup %.1fx\n",
              snapshot_first_secs, speedup_first);
  std::printf("rebuild total (100 q)    : %8.3f s\n", rebuild_secs);
  std::printf("snapshot total (100 q)   : %8.3f s   speedup %.1fx\n",
              snapshot_secs, speedup_total);
  std::printf("canonical mismatches     : %zu\n", mismatches);

  bench::BenchJson json("snapshot");
  json.Add("questions", stream.size());
  json.Add("rebuild_first_answer_secs", rebuild_first_secs);
  json.Add("snapshot_open_secs", open_secs);
  json.Add("snapshot_first_answer_secs", snapshot_first_secs);
  json.Add("rebuild_total_secs", rebuild_secs);
  json.Add("snapshot_total_secs", snapshot_secs);
  json.Add("cold_start_speedup", speedup_first);
  json.Add("mismatches", mismatches);
  json.Write();

  std::remove(path.c_str());

  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu canonical answer mismatches between snapshot "
                 "and rebuilt engines\n",
                 mismatches);
    return 1;
  }
  // Conservative CI floor: the acceptance target is >=10x; gate at 5x so
  // runner noise cannot flake the job while a real regression still fails.
  if (speedup_first < 5.0) {
    std::fprintf(stderr,
                 "FAIL: cold-start speedup %.1fx is below the 5x floor\n",
                 speedup_first);
    return 1;
  }
  std::printf("cold-start floor (>=5x): PASS\n");
  return 0;
}
