// Ablation A6 (§4.4.2's design decision / §6 future work #1): evaluating
// explicit Boolean questions with the implicit-question rules (the paper's
// choice) vs a literal precedence-based reading of the operators. The
// paper found reusing the implicit rules loses almost nothing (90.1% vs
// 90.3%); this bench tests whether a "proper" precedence evaluator would
// have helped.
#include "bench_util.h"
#include "core/condition_builder.h"
#include "eval/experiments.h"

int main() {
  using namespace cqads;
  auto world = bench::BuildPaperWorld();
  const std::string domain = "cars";
  const auto* spec = world->spec(domain);
  const auto* table = world->table(domain);

  datagen::QuestionGenOptions opts;
  opts.p_boolean = 1.0;
  opts.p_explicit_given_boolean = 1.0;  // explicit questions only
  opts.p_misspell = 0;
  opts.p_missing_space = 0;
  opts.p_shorthand = 0;
  opts.p_incomplete = 0;
  opts.p_superlative = 0;
  Rng rng(606);
  auto questions = datagen::GenerateQuestions(*spec, *table, 200, opts, &rng);

  const core::DomainRuntime* rt = world->engine().runtime(domain);
  core::AmbiguousResolver resolver =
      [table](double value, bool is_money) -> std::vector<std::size_t> {
    std::vector<std::size_t> out;
    for (std::size_t a : table->schema().NumericAttrs()) {
      if (is_money &&
          !core::IsMoneyAttribute(table->schema().attribute(a))) {
        continue;
      }
      auto range = table->NumericRange(a);
      if (range.ok() && value >= range.value().first &&
          value <= range.value().second) {
        out.push_back(a);
      }
    }
    return out;
  };

  std::size_t n = 0, implicit_ok = 0, precedence_ok = 0;
  for (const auto& q : questions) {
    core::TaggingResult tags = core::QuestionTagger(rt->lexicon.get())
                                   .Tag(q.text);
    auto built = core::BuildConditions(tags.items, table->schema());
    auto implicit_rules =
        core::AssembleQuery(built, table->schema(), resolver);
    auto precedence =
        core::AssembleExplicitPrecedence(built, table->schema(), resolver);
    if (!implicit_rules.ok() || !precedence.ok()) continue;

    std::string intent =
        eval::NormalizeInterpretation(table->schema(), q.oracle.where);
    ++n;
    if (eval::NormalizeInterpretation(table->schema(),
                                      implicit_rules.value().where) ==
        intent) {
      ++implicit_ok;
    }
    if (eval::NormalizeInterpretation(table->schema(),
                                      precedence.value().where) == intent) {
      ++precedence_ok;
    }
  }

  bench::PrintHeader(
      "Ablation A6: explicit Boolean questions - implicit rules vs literal "
      "precedence");
  std::printf("explicit Boolean questions audited: %zu\n", n);
  bench::PrintRule();
  std::printf("%-36s %10s\n", "evaluator", "accuracy");
  bench::PrintRule();
  std::printf("%-36s %9.1f%%\n", "implicit rules (paper, §4.4.2)",
              100.0 * implicit_ok / std::max<std::size_t>(1, n));
  std::printf("%-36s %9.1f%%\n", "literal AND/OR precedence",
              100.0 * precedence_ok / std::max<std::size_t>(1, n));
  bench::PrintRule();
  std::printf("(the literal reading lacks mutual-exclusion and right-"
              "association knowledge:\n \"black or silver honda\" becomes "
              "black OR (silver AND honda))\n");
  return 0;
}
