// Rank-stage scaling: cold partial ranking over a >=100k-row domain, the
// pruned morsel-parallel top-k path (EngineOptions::use_topk_rank, default)
// against the frozen serial collect-all + full-sort oracle.
//
// The table is generated clustered — rows grouped by (make, model), prices
// ascending within a group — the shape real ad feeds have (listings arrive
// batched by seller and segment), and the shape block-max pruning exploits:
// a 1024-row block then covers a narrow slice of the score-relevant value
// range, so once the shared top-k threshold rises, whole blocks bound below
// it and are skipped unscored. Questions are numeric-target and N-1 shapes
// whose exact answer set is (near) empty, so every ask runs the §4.3.1
// partial-ranking stage over the full table.
//
// Gates (CI): pruned-parallel speedup >= 1.3x over serial, nonzero skipped
// blocks, and byte-identical answers between the two paths. Non-zero exit
// on any violation. Emits BENCH_rank_scale.json.
//
// Usage: rank_scale [--quick]
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/ask_types.h"
#include "core/cqads_engine.h"
#include "db/schema.h"
#include "db/table.h"
#include "qlog/ti_matrix.h"
#include "serve/worker_pool.h"

namespace {

using namespace cqads;

db::Schema CarSchema() {
  using db::AttrType;
  using db::Attribute;
  using db::DataKind;
  auto cat = [](std::string name, AttrType t,
                std::vector<std::string> aliases = {}) {
    Attribute a;
    a.name = std::move(name);
    a.attr_type = t;
    a.data_kind = DataKind::kCategorical;
    a.aliases = std::move(aliases);
    return a;
  };
  db::Attribute year;
  year.name = "year";
  year.attr_type = AttrType::kTypeIII;
  year.data_kind = DataKind::kNumeric;
  year.aliases = {"year"};
  db::Attribute price;
  price.name = "price";
  price.attr_type = AttrType::kTypeIII;
  price.data_kind = DataKind::kNumeric;
  price.unit_keywords = {"dollars", "dollar", "usd"};
  price.aliases = {"price", "cost"};
  db::Attribute mileage;
  mileage.name = "mileage";
  mileage.attr_type = AttrType::kTypeIII;
  mileage.data_kind = DataKind::kNumeric;
  mileage.unit_keywords = {"miles", "mi"};
  mileage.aliases = {"mileage"};
  db::Attribute features;
  features.name = "features";
  features.attr_type = AttrType::kTypeII;
  features.data_kind = DataKind::kTextList;
  return db::Schema("cars",
                    {cat("make", AttrType::kTypeI, {"maker"}),
                     cat("model", AttrType::kTypeI), year, price, mileage,
                     cat("color", AttrType::kTypeII, {"color"}),
                     cat("transmission", AttrType::kTypeII),
                     cat("doors", AttrType::kTypeII),
                     cat("drivetrain", AttrType::kTypeII), features});
}

/// Clustered fleet: (make, model) groups in sequence, prices ascending
/// inside each group's band, the categorical attributes cycling.
db::Table BuildFleet(std::size_t rows) {
  struct MakeModel {
    const char* make;
    const char* model;
  };
  static constexpr MakeModel kPairs[] = {
      {"honda", "accord"},  {"honda", "civic"},   {"toyota", "camry"},
      {"toyota", "corolla"}, {"ford", "focus"},   {"ford", "mustang"},
      {"chevy", "malibu"},  {"bmw", "m3"},        {"mazda", "mazda3"},
      {"jeep", "cherokee"},
  };
  static constexpr const char* kColors[] = {"blue", "red",    "white", "black",
                                            "silver", "green", "gold"};
  static constexpr const char* kFeatures[] = {
      "cd player;power steering", "gps;leather seats", "bluetooth;usb",
      "cruise control", "backup camera;sunroof"};
  constexpr std::size_t kNumPairs = sizeof(kPairs) / sizeof(kPairs[0]);

  db::Table table(CarSchema());
  Rng rng(20111130);
  const std::size_t per_pair = rows / kNumPairs;
  for (std::size_t p = 0; p < kNumPairs; ++p) {
    const double band_lo = 2000.0 + 4000.0 * static_cast<double>(p);
    const std::size_t n = p + 1 == kNumPairs ? rows - per_pair * p : per_pair;
    for (std::size_t i = 0; i < n; ++i) {
      const double frac = static_cast<double>(i) / static_cast<double>(n);
      db::Record r;
      r.push_back(db::Value::Text(kPairs[p].make));
      r.push_back(db::Value::Text(kPairs[p].model));
      r.push_back(db::Value::Real(
          2000.0 + static_cast<double>(rng.UniformInt(0, 12))));
      // Ascending within the band, cents jitter keeping values unique-ish
      // (so numeric-target questions have ~no exact matches and partial
      // ranking always triggers).
      r.push_back(db::Value::Real(band_lo + 4000.0 * frac +
                                  rng.UniformReal(0.0, 0.99)));
      r.push_back(db::Value::Real(
          static_cast<double>(rng.UniformInt(10, 180)) * 1000.0));
      r.push_back(db::Value::Text(kColors[i % 7]));
      r.push_back(db::Value::Text(i % 3 == 0 ? "manual" : "automatic"));
      r.push_back(db::Value::Text(i % 2 == 0 ? "4 door" : "2 door"));
      r.push_back(db::Value::Text(i % 5 == 0 ? "4 wheel drive"
                                             : "2 wheel drive"));
      r.push_back(db::Value::Text(kFeatures[i % 5]));
      if (!table.Insert(std::move(r)).ok()) std::abort();
    }
  }
  table.BuildIndexes();
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t rows = quick ? 40000 : 150000;
  const std::size_t iters = quick ? 2 : 3;

  db::Table table = BuildFleet(rows);
  core::CqadsEngine engine;
  if (!engine.AddDomain(&table, qlog::TiMatrix()).ok()) {
    std::fprintf(stderr, "AddDomain failed\n");
    return 1;
  }

  // Single-condition numeric targets (full-table sweep) plus N-1 shapes
  // with one heavy relaxation pass; every target is chosen to have ~zero
  // exact matches so the rank stage runs cold over the whole domain.
  const std::vector<std::string> candidates = {
      "3000 dollars",
      "9000 dollars",
      "17500 dollars",
      "26000 dollars",
      "41000 dollars",
      "150 dollars",
      "honda civic 9000 dollars",
      "toyota camry 11500 dollars",
      "bmw m3 31000 dollars",
      "blue mazda mazda3 36000 dollars",
  };

  // Keep only the questions whose ask actually exercised the top-k rank
  // sweep (exact answers below the partial trigger).
  std::vector<std::string> questions;
  for (const auto& q : candidates) {
    auto r = engine.AskInDomain("cars", q);
    if (!r.ok()) continue;
    if (r.value().stats.rank_blocks_visited +
            r.value().stats.rank_blocks_skipped >
        0) {
      questions.push_back(q);
    }
  }
  if (questions.empty()) {
    std::fprintf(stderr, "FAIL: no rank-triggering questions survived\n");
    return 1;
  }

  auto ask_all = [&](std::vector<std::string>* canon, db::ExecStats* stats) {
    auto start = Clock::now();
    for (std::size_t it = 0; it < iters; ++it) {
      for (const auto& q : questions) {
        auto r = engine.AskInDomain("cars", q);
        if (!r.ok()) {
          canon->push_back("ERROR: " + r.status().ToString());
          continue;
        }
        if (stats != nullptr) *stats += r.value().stats;
        canon->push_back(core::CanonicalAskResultString(r.value()));
      }
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  // Serial full-sort oracle.
  core::EngineOptions serial_options;
  serial_options.use_topk_rank = false;
  engine.SetOptions(serial_options);
  std::vector<std::string> serial_answers;
  const double serial_secs = ask_all(&serial_answers, nullptr);

  // Pruned, morsel-parallel top-k.
  serve::WorkerPool pool(4);
  core::EngineOptions topk_options;  // defaults: use_topk_rank = true
  topk_options.exec_runner = &pool;
  topk_options.exec_parallelism = 4;
  engine.SetOptions(topk_options);
  std::vector<std::string> topk_answers;
  db::ExecStats topk_stats;
  const double topk_secs = ask_all(&topk_answers, &topk_stats);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < serial_answers.size(); ++i) {
    if (serial_answers[i] != topk_answers[i]) ++mismatches;
  }

  const double speedup = serial_secs / topk_secs;
  const std::size_t asks = questions.size() * iters;

  cqads::bench::PrintHeader("rank_scale: pruned top-k vs serial full sort");
  std::printf("rows: %zu   rank questions: %zu   iterations: %zu\n", rows,
              questions.size(), iters);
  std::printf("serial full-sort rank   : %8.1f ms/ask\n",
              1000.0 * serial_secs / static_cast<double>(asks));
  std::printf("pruned parallel top-k   : %8.1f ms/ask   speedup %.2fx\n",
              1000.0 * topk_secs / static_cast<double>(asks), speedup);
  std::printf("blocks visited=%zu skipped=%zu (%.1f%%)   rows pruned=%zu   "
              "threshold updates=%zu\n",
              topk_stats.rank_blocks_visited, topk_stats.rank_blocks_skipped,
              100.0 * static_cast<double>(topk_stats.rank_blocks_skipped) /
                  static_cast<double>(topk_stats.rank_blocks_visited +
                                      topk_stats.rank_blocks_skipped),
              topk_stats.rank_rows_pruned,
              topk_stats.rank_threshold_updates);
  std::printf("answer mismatches vs serial oracle: %zu\n", mismatches);

  cqads::bench::BenchJson json("rank_scale");
  json.Add("rows", rows);
  json.Add("questions", questions.size());
  json.Add("iterations", iters);
  json.Add("serial_ms_per_ask",
           1000.0 * serial_secs / static_cast<double>(asks));
  json.Add("topk_ms_per_ask", 1000.0 * topk_secs / static_cast<double>(asks));
  json.Add("speedup", speedup);
  json.Add("rank_blocks_visited", topk_stats.rank_blocks_visited);
  json.Add("rank_blocks_skipped", topk_stats.rank_blocks_skipped);
  json.Add("rank_rows_pruned", topk_stats.rank_rows_pruned);
  json.Add("rank_threshold_updates", topk_stats.rank_threshold_updates);
  json.Add("mismatches", mismatches);
  json.Write();

  constexpr double kSpeedupFloor = 1.3;
  if (mismatches > 0) {
    std::printf("FAIL: %zu answer mismatches vs the serial oracle\n",
                mismatches);
    return 1;
  }
  if (topk_stats.rank_blocks_skipped == 0) {
    std::printf("FAIL: block-max pruning skipped nothing\n");
    return 1;
  }
  if (speedup < kSpeedupFloor) {
    std::printf("FAIL: speedup %.2fx below the %.1fx floor\n", speedup,
                kSpeedupFloor);
    return 1;
  }
  return 0;
}
