// Ablation A2 (§4.5's indexing claim): substring predicates through the
// length-3 n-gram index vs a full table scan. The paper installs MySQL
// substring indexes of length 3 on all attributes to speed retrieval.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/ads_generator.h"
#include "datagen/domain_spec.h"
#include "db/executor.h"

namespace {

using namespace cqads;

const db::Table& SharedTable() {
  static db::Table* table = [] {
    Rng rng(23);
    auto t = datagen::GenerateAds(*datagen::FindDomainSpec("cars"),
                                  2000, &rng);
    return new db::Table(std::move(t).value());
  }();
  return *table;
}

db::Predicate ContainsPred(std::size_t attr, const char* needle) {
  db::Predicate p;
  p.attr = attr;
  p.op = db::CompareOp::kContains;
  p.value = db::Value::Text(needle);
  return p;
}

void BM_SubstringViaNGramIndex(benchmark::State& state) {
  const db::Table& table = SharedTable();
  db::Executor exec(&table);
  const db::Predicate pred = ContainsPred(1, "cor");  // models with "cor"
  std::size_t total = 0;
  for (auto _ : state) {
    db::ExecStats stats;
    auto rows = exec.EvalPredicate(pred, &stats);
    total += rows.size();
  }
  benchmark::DoNotOptimize(total);
  state.SetLabel("2000 rows");
}
BENCHMARK(BM_SubstringViaNGramIndex);

void BM_SubstringViaFullScan(benchmark::State& state) {
  const db::Table& table = SharedTable();
  db::Executor exec(&table);
  const db::Predicate pred = ContainsPred(1, "cor");
  std::size_t total = 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    for (db::RowId r = 0; r < table.num_rows(); ++r) {
      if (exec.Matches(r, pred)) ++hits;
    }
    total += hits;
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_SubstringViaFullScan);

// The feature column has longer text per row: the index advantage grows.
void BM_FeatureSubstringViaNGramIndex(benchmark::State& state) {
  const db::Table& table = SharedTable();
  db::Executor exec(&table);
  const db::Predicate pred = ContainsPred(9, "leather");
  std::size_t total = 0;
  for (auto _ : state) {
    db::ExecStats stats;
    total += exec.EvalPredicate(pred, &stats).size();
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_FeatureSubstringViaNGramIndex);

void BM_FeatureSubstringViaFullScan(benchmark::State& state) {
  const db::Table& table = SharedTable();
  db::Executor exec(&table);
  const db::Predicate pred = ContainsPred(9, "leather");
  std::size_t total = 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    for (db::RowId r = 0; r < table.num_rows(); ++r) {
      if (exec.Matches(r, pred)) ++hits;
    }
    total += hits;
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_FeatureSubstringViaFullScan);

// Equality through the hash index vs scan: the Type I/II access paths of
// §4.3 steps 1-2.
void BM_EqualityViaHashIndex(benchmark::State& state) {
  const db::Table& table = SharedTable();
  db::Executor exec(&table);
  db::Predicate pred;
  pred.attr = 0;
  pred.value = db::Value::Text("honda");
  std::size_t total = 0;
  for (auto _ : state) {
    db::ExecStats stats;
    total += exec.EvalPredicate(pred, &stats).size();
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_EqualityViaHashIndex);

}  // namespace

BENCHMARK_MAIN();
