// Figure 4: Boolean question interpretation accuracy. Paper: 90.2% average
// (implicit 90.3%, explicit 90.1%) over 10 sampled questions x 90 Facebook
// responses; dips on Q3/Q8/Q10 (mutually-exclusive conjunction readings and
// negation scope).
#include "bench_util.h"
#include "eval/experiments.h"

int main() {
  using namespace cqads;
  auto world = bench::BuildPaperWorld();
  // 182 Boolean questions (the paper's survey yield), 10 sampled for the
  // second survey with 90 responses each.
  auto result =
      eval::RunBooleanInterpretation(*world, "cars", 182, 10, 90, 412);

  bench::PrintHeader("Figure 4: Boolean interpretation accuracy");
  std::printf("audited Boolean questions: %zu implicit, %zu explicit\n",
              result.implicit_count, result.explicit_count);
  bench::PrintRule();
  std::printf("%-34s %10s %10s\n", "population accuracy", "measured",
              "paper");
  bench::PrintRule();
  std::printf("%-34s %9.1f%% %10s\n", "implicit questions",
              result.implicit_accuracy * 100.0, "90.3%");
  std::printf("%-34s %9.1f%% %10s\n", "explicit questions",
              result.explicit_accuracy * 100.0, "90.1%");
  std::printf("%-34s %9.1f%% %10s\n", "overall",
              result.overall_accuracy * 100.0, "90.2%");
  bench::PrintRule();
  std::printf("sampled Boolean-survey questions (appraiser agreement with "
              "CQAds' reading):\n");
  for (std::size_t i = 0; i < result.sampled.size(); ++i) {
    const auto& s = result.sampled[i];
    std::printf("Q%-2zu %-8s %5.1f%%  %s\n", i + 1,
                s.implicit ? "implicit" : "explicit",
                s.appraiser_agreement * 100.0, s.text.c_str());
  }
  double mean = 0.0;
  for (const auto& s : result.sampled) mean += s.appraiser_agreement;
  if (!result.sampled.empty()) mean /= result.sampled.size();
  bench::PrintRule();
  std::printf("mean sampled agreement: %.1f%%  (paper: 90.2%%)\n",
              mean * 100.0);
  return 0;
}
