// Ablation A3 (§4.3.1's design discussion): N-1 vs N-2 condition
// relaxation. The paper argues deeper relaxation costs more processing time
// and returns results less likely to satisfy the user; this bench measures
// both effects with the appraiser model.
#include <chrono>

#include "bench_util.h"
#include "baselines/ranker.h"
#include "db/executor.h"
#include "eval/appraiser.h"
#include "eval/experiments.h"

int main() {
  using namespace cqads;
  using Clock = std::chrono::steady_clock;
  auto world = bench::BuildPaperWorld();

  struct Tally {
    double ms = 0.0;
    std::size_t results = 0;
    std::size_t related = 0;
    std::size_t questions = 0;
  };
  Tally n1, n2;

  Rng rng(733);
  for (const auto& domain : world->domains()) {
    const auto* spec = world->spec(domain);
    const auto* table = world->table(domain);
    datagen::QuestionGenOptions opts;
    opts.p_boolean = 0;
    opts.p_superlative = 0;
    opts.p_incomplete = 0;
    opts.p_misspell = 0;
    opts.p_missing_space = 0;
    opts.p_shorthand = 0;
    opts.p_partial_identity = 0;
    Rng qrng = rng.Fork();
    auto questions =
        datagen::GenerateQuestions(*spec, *table, 40, opts, &qrng);
    eval::Appraiser appraiser(spec, table, eval::AppraiserOptions{});
    db::Executor exec(table);

    for (const auto& q : questions) {
      auto parsed = world->engine().Parse(domain, q.text);
      if (!parsed.ok()) continue;
      const auto& units = parsed.value().assembled.units;
      if (units.size() < 3) continue;

      auto run_relaxation = [&](std::size_t drop_count, Tally* tally) {
        auto t0 = Clock::now();
        std::vector<db::RowId> found;
        // Enumerate all subsets of `drop_count` dropped units.
        std::vector<std::size_t> idx(drop_count);
        std::function<void(std::size_t, std::size_t)> rec =
            [&](std::size_t start, std::size_t chosen) {
              if (chosen == drop_count) {
                std::vector<db::ExprPtr> parts;
                for (std::size_t u = 0; u < units.size(); ++u) {
                  bool dropped = false;
                  for (std::size_t c = 0; c < drop_count; ++c) {
                    if (idx[c] == u) dropped = true;
                  }
                  if (!dropped) parts.push_back(units[u].expr);
                }
                db::Query query;
                query.where =
                    parts.empty() ? nullptr : db::Expr::MakeAnd(parts);
                query.limit = table->num_rows();
                auto res = exec.Execute(query);
                if (res.ok()) {
                  for (auto r : res.value().rows) found.push_back(r);
                }
                return;
              }
              for (std::size_t u = start; u < units.size(); ++u) {
                idx[chosen] = u;
                rec(u + 1, chosen + 1);
              }
            };
        rec(0, 0);
        std::sort(found.begin(), found.end());
        found.erase(std::unique(found.begin(), found.end()), found.end());
        auto t1 = Clock::now();
        tally->ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        tally->results += found.size();
        std::size_t sample = std::min<std::size_t>(found.size(), 30);
        for (std::size_t s = 0; s < sample; ++s) {
          if (appraiser.IsRelatedTruth(q, found[s])) ++tally->related;
        }
        ++tally->questions;
      };

      run_relaxation(1, &n1);
      run_relaxation(2, &n2);
    }
  }

  bench::PrintHeader("Ablation A3: N-1 vs N-2 condition relaxation");
  std::printf("%-10s %10s %12s %14s %16s\n", "strategy", "questions",
              "avg ms", "avg results", "related@30");
  bench::PrintRule();
  auto row = [](const char* name, const Tally& t) {
    double denom = std::max<std::size_t>(1, t.questions);
    std::printf("%-10s %10zu %12.3f %14.1f %15.1f%%\n", name, t.questions,
                t.ms / denom, t.results / denom,
                100.0 * t.related /
                    std::max<std::size_t>(1, std::min<std::size_t>(
                                                 t.results,
                                                 30 * t.questions)));
  };
  row("N-1", n1);
  row("N-2", n2);
  bench::PrintRule();
  std::printf("(paper: more dropped conditions -> longer processing and "
              "results less likely to satisfy the user)\n");
  return 0;
}
