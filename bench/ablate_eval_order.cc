// Ablation A5 (§4.3's evaluation-order claim): Type I conditions first
// (primary index seeds the candidate set) vs evaluating conditions in
// reverse type order. Both produce identical answers — the paper notes the
// non-superlative conditions commute — but the work differs: seeding with
// the selective identity condition shrinks the set verified by later
// conditions.
#include <chrono>

#include "bench_util.h"
#include "db/executor.h"
#include "eval/experiments.h"

int main() {
  using namespace cqads;
  using Clock = std::chrono::steady_clock;
  auto world = bench::BuildPaperWorld();

  struct Tally {
    double ms = 0.0;
    std::size_t rows_verified = 0;
    std::size_t queries = 0;
  };
  Tally ordered, reversed;

  for (const auto& domain : world->domains()) {
    const auto* spec = world->spec(domain);
    const auto* table = world->table(domain);
    datagen::QuestionGenOptions opts;
    opts.p_boolean = 0;
    opts.p_superlative = 0;
    opts.p_incomplete = 0;
    opts.p_misspell = 0;
    opts.p_missing_space = 0;
    opts.p_shorthand = 0;
    Rng rng(515);
    auto questions =
        datagen::GenerateQuestions(*spec, *table, 50, opts, &rng);
    db::Executor exec(table);

    for (const auto& q : questions) {
      auto parsed = world->engine().Parse(domain, q.text);
      if (!parsed.ok()) continue;
      std::vector<db::Predicate> preds;
      if (!parsed.value().query.where) continue;
      parsed.value().query.where->CollectPredicates(&preds);
      if (preds.size() < 2) continue;

      auto run = [&](bool reverse, Tally* tally) {
        auto ps = preds;
        if (reverse) std::reverse(ps.begin(), ps.end());
        auto t0 = Clock::now();
        db::ExecStats stats;
        // Seed with the first predicate's index result, then verify the
        // rest row by row — the §4.3 strategy with a chosen seed.
        db::RowSet candidates = exec.EvalPredicate(ps[0], &stats);
        for (std::size_t i = 1; i < ps.size() && !candidates.empty(); ++i) {
          db::RowSet next;
          stats.rows_verified += candidates.size();
          for (db::RowId r : candidates) {
            if (exec.Matches(r, ps[i])) next.push_back(r);
          }
          candidates = std::move(next);
        }
        auto t1 = Clock::now();
        tally->ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        tally->rows_verified += stats.rows_verified;
        ++tally->queries;
      };
      // Parsed predicates come out in §4.3 order (Type I first) because the
      // assembler groups identity units first.
      run(false, &ordered);
      run(true, &reversed);
    }
  }

  bench::PrintHeader(
      "Ablation A5: evaluation order (Type I first vs reversed)");
  std::printf("%-22s %10s %12s %18s\n", "strategy", "queries", "avg ms",
              "avg rows verified");
  bench::PrintRule();
  auto row = [](const char* name, const Tally& t) {
    double denom = std::max<std::size_t>(1, t.queries);
    std::printf("%-22s %10zu %12.4f %18.1f\n", name, t.queries, t.ms / denom,
                t.rows_verified / denom);
  };
  row("Type I first (§4.3)", ordered);
  row("reversed order", reversed);
  bench::PrintRule();
  std::printf("(identical answers either way; the §4.3 order verifies fewer "
              "rows because the\n identity condition is the most selective "
              "seed)\n");
  return 0;
}
