// FlatTrie vs KeywordTrie: the frozen flat compile must reproduce the
// pointer trie's behaviour byte-for-byte — unit cases first, then a
// randomized differential over the lexicon tries of all eight datagen
// domains (Step/Walk/IsTerminal/Handles/Completions order/LongestMatch/
// AllMatchLengths), plus the segmenter and spell corrector running on both
// representations.
#include "trie/flat_trie.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "datagen/domain_spec.h"
#include "datagen/world.h"
#include "trie/keyword_trie.h"
#include "trie/segmenter.h"
#include "trie/spell_corrector.h"

namespace cqads::trie {
namespace {

KeywordTrie MakeCarTrie() {
  KeywordTrie t;
  t.Insert("honda", 1);
  t.Insert("honda shadow", 2);
  t.Insert("accord", 3);
  t.Insert("less than", 4);
  t.Insert("blue", 5);
  t.Insert("2 door", 6);
  t.Insert("gold", 7);
  t.Insert("gold", 8);  // second handle, insertion order must survive
  return t;
}

TEST(FlatTrieTest, DefaultConstructedIsSafeNoMatch) {
  FlatTrie never_compiled;
  EXPECT_FALSE(never_compiled.Root().valid());
  EXPECT_FALSE(never_compiled.Contains("x"));
  EXPECT_TRUE(never_compiled.Find("x").empty());
  EXPECT_FALSE(never_compiled.Step(never_compiled.Root(), 'a').valid());
  EXPECT_EQ(never_compiled.LongestMatchLength("abc", 0), 0u);
  EXPECT_TRUE(never_compiled.AllMatchLengths("abc", 0).empty());
  EXPECT_TRUE(
      never_compiled.Completions(never_compiled.Root(), "", 5).empty());
}

TEST(FlatTrieTest, EmptyTrie) {
  KeywordTrie empty;
  FlatTrie flat = FlatTrie::Compile(empty);
  EXPECT_TRUE(flat.empty());
  EXPECT_EQ(flat.size(), 0u);
  EXPECT_EQ(flat.node_count(), 1u);  // root
  EXPECT_FALSE(flat.Contains("anything"));
  EXPECT_FALSE(flat.IsTerminal(flat.Root()));
  EXPECT_FALSE(flat.HasChildren(flat.Root()));
  EXPECT_TRUE(flat.Completions(flat.Root(), "", 10).empty());
}

TEST(FlatTrieTest, BasicLookupsMatchSource) {
  KeywordTrie t = MakeCarTrie();
  FlatTrie flat = FlatTrie::Compile(t);
  EXPECT_EQ(flat.size(), t.size());
  EXPECT_EQ(flat.node_count(), t.node_count());
  EXPECT_TRUE(flat.Contains("honda"));
  EXPECT_TRUE(flat.Contains("less than"));
  EXPECT_FALSE(flat.Contains("hond"));
  EXPECT_FALSE(flat.Contains("hondas"));
  auto handles = flat.Find("gold");
  ASSERT_EQ(handles.size(), 2u);
  EXPECT_EQ(handles[0], 7);  // insertion order preserved
  EXPECT_EQ(handles[1], 8);
  EXPECT_TRUE(flat.Find("missing").empty());
}

TEST(FlatTrieTest, CursorWalkMatchesSource) {
  KeywordTrie t = MakeCarTrie();
  FlatTrie flat = FlatTrie::Compile(t);
  auto c = flat.Walk(flat.Root(), "honda");
  ASSERT_TRUE(c.valid());
  EXPECT_TRUE(flat.IsTerminal(c));
  EXPECT_TRUE(flat.HasChildren(c));  // "honda shadow" continues
  auto c2 = flat.Step(c, ' ');
  ASSERT_TRUE(c2.valid());
  EXPECT_FALSE(flat.IsTerminal(c2));
  EXPECT_FALSE(flat.Step(c, 'x').valid());
  EXPECT_FALSE(flat.Walk(flat.Root(), "zzz").valid());
  // Stepping an invalid cursor stays invalid.
  EXPECT_FALSE(flat.Step(FlatTrie::Cursor(), 'a').valid());
}

TEST(FlatTrieTest, CompletionsOrderAndLimit) {
  KeywordTrie t = MakeCarTrie();
  FlatTrie flat = FlatTrie::Compile(t);
  auto full = t.Completions(t.Root(), "", 100);
  auto flat_full = flat.Completions(flat.Root(), "", 100);
  ASSERT_EQ(full, flat_full);
  for (std::size_t limit = 0; limit <= full.size() + 1; ++limit) {
    EXPECT_EQ(t.Completions(t.Root(), "", limit),
              flat.Completions(flat.Root(), "", limit))
        << "limit " << limit;
  }
  // Anchored completions under a prefix.
  auto anchor = t.Walk(t.Root(), "ho");
  auto flat_anchor = flat.Walk(flat.Root(), "ho");
  EXPECT_EQ(t.Completions(anchor, "ho", 10),
            flat.Completions(flat_anchor, "ho", 10));
}

TEST(FlatTrieTest, MatchLengths) {
  KeywordTrie t = MakeCarTrie();
  FlatTrie flat = FlatTrie::Compile(t);
  const std::string s = "honda shadow rider";
  for (std::size_t from = 0; from <= s.size(); ++from) {
    EXPECT_EQ(t.LongestMatchLength(s, from), flat.LongestMatchLength(s, from));
    EXPECT_EQ(t.AllMatchLengths(s, from), flat.AllMatchLengths(s, from));
  }
}

// ---- randomized differential over the eight datagen domains --------------

class FlatTrieDomainTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 20260727;
    options.ads_per_domain = 150;
    options.sessions_per_domain = 100;
    options.corpus_docs_per_domain = 30;
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static datagen::World* world_;
};

datagen::World* FlatTrieDomainTest::world_ = nullptr;

/// All keywords of a trie (differential corpus seed).
std::vector<std::string> Keywords(const KeywordTrie& t) {
  std::vector<std::string> out;
  for (auto& [kw, handle] : t.Completions(t.Root(), "", 1u << 20)) {
    (void)handle;
    if (out.empty() || out.back() != kw) out.push_back(kw);
  }
  return out;
}

TEST_P(FlatTrieDomainTest, RandomizedDifferential) {
  const auto* rt = world_->engine().runtime(GetParam());
  ASSERT_NE(rt, nullptr);
  const KeywordTrie& oracle = rt->lexicon->trie();
  const FlatTrie& flat = rt->lexicon->flat_trie();

  EXPECT_EQ(flat.size(), oracle.size());
  EXPECT_EQ(flat.node_count(), oracle.node_count());
  ASSERT_GT(flat.size(), 0u);

  // Full keyword enumeration must agree, handles included.
  EXPECT_EQ(oracle.Completions(oracle.Root(), "", 1u << 20),
            flat.Completions(flat.Root(), "", 1u << 20));

  const std::vector<std::string> keywords = Keywords(oracle);
  std::mt19937 rng(1234 + keywords.size());
  auto rand_index = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
  };

  // Probe corpus: real keywords, mutations, truncations, concatenations,
  // and garbage.
  std::vector<std::string> probes;
  for (int i = 0; i < 400; ++i) {
    std::string s = keywords[rand_index(keywords.size())];
    switch (rng() % 5) {
      case 0:
        break;  // exact keyword
      case 1:  // point mutation
        if (!s.empty()) s[rand_index(s.size())] = static_cast<char>('a' + rng() % 26);
        break;
      case 2:  // truncation
        s = s.substr(0, rand_index(s.size() + 1));
        break;
      case 3:  // concatenation (missing-space shape)
        s += keywords[rand_index(keywords.size())];
        break;
      default:  // keyword with noise suffix
        s += static_cast<char>('a' + rng() % 26);
        break;
    }
    probes.push_back(std::move(s));
  }

  for (const std::string& p : probes) {
    EXPECT_EQ(oracle.Contains(p), flat.Contains(p)) << p;

    // Walk char-by-char, comparing cursor state at every step.
    auto oc = oracle.Root();
    auto fc = flat.Root();
    for (char c : p) {
      oc = oracle.Step(oc, c);
      fc = flat.Step(fc, c);
      ASSERT_EQ(oc.valid(), fc.valid()) << p;
      if (!oc.valid()) break;
      ASSERT_EQ(oracle.IsTerminal(oc), flat.IsTerminal(fc)) << p;
      ASSERT_EQ(oracle.HasChildren(oc), flat.HasChildren(fc)) << p;
      const auto& oh = oracle.Handles(oc);
      const auto fh = flat.Handles(fc);
      ASSERT_EQ(std::vector<std::int32_t>(oh.begin(), oh.end()),
                std::vector<std::int32_t>(fh.begin(), fh.end()))
          << p;
    }

    for (std::size_t from = 0; from < p.size(); from += 1 + rng() % 3) {
      EXPECT_EQ(oracle.LongestMatchLength(p, from),
                flat.LongestMatchLength(p, from))
          << p << " @" << from;
      EXPECT_EQ(oracle.AllMatchLengths(p, from), flat.AllMatchLengths(p, from))
          << p << " @" << from;
    }

    // Completions under the probe's deepest valid prefix, random limit.
    std::size_t depth = 0;
    auto a = oracle.Root();
    while (depth < p.size()) {
      auto next = oracle.Step(a, p[depth]);
      if (!next.valid()) break;
      a = next;
      ++depth;
    }
    const std::string prefix = p.substr(0, depth);
    const std::size_t limit = 1 + rng() % 64;
    EXPECT_EQ(
        oracle.Completions(oracle.Walk(oracle.Root(), prefix), prefix, limit),
        flat.Completions(flat.Walk(flat.Root(), prefix), prefix, limit))
        << prefix;

    // Segmenter and spell corrector must agree through either trie.
    EXPECT_EQ(SegmentWord(oracle, p), SegmentWord(flat, p)) << p;
  }

  // Spell corrector differential on mutated keywords.
  SpellCorrector oracle_corr(&oracle);
  FlatSpellCorrector flat_corr(&flat);
  for (int i = 0; i < 150; ++i) {
    std::string w = keywords[rand_index(keywords.size())];
    if (!w.empty()) w[rand_index(w.size())] = static_cast<char>('a' + rng() % 26);
    auto a = oracle_corr.Correct(w);
    auto b = flat_corr.Correct(w);
    ASSERT_EQ(a.has_value(), b.has_value()) << w;
    if (a.has_value()) {
      EXPECT_EQ(a->keyword, b->keyword) << w;
      EXPECT_EQ(a->percent, b->percent) << w;
    }
  }

  // The flat compile should be materially smaller than the pointer tree.
  EXPECT_LT(flat.MemoryBytes(), oracle.ApproxMemoryBytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllDomains, FlatTrieDomainTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> names;
      for (const auto& spec : datagen::AllDomainSpecs()) {
        names.push_back(spec.schema.domain());
      }
      return names;
    }()));

}  // namespace
}  // namespace cqads::trie
