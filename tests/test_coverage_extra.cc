// Additional coverage: operator phrasing variants through the full parse
// path, engine options, generator conditioning, and experiment-driver
// behaviour on secondary domains.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cqads_engine.h"
#include "datagen/ads_generator.h"
#include "datagen/question_gen.h"
#include "eval/experiments.h"
#include "test_fixtures.h"

namespace cqads {
namespace {

class ParseVariantsTest : public ::testing::Test {
 protected:
  ParseVariantsTest() : table_(cqads::testing::MiniCarTable()) {
    EXPECT_TRUE(engine_.AddDomain(&table_, qlog::TiMatrix()).ok());
  }

  std::string Interp(const std::string& question) {
    auto parsed = engine_.Parse("cars", question);
    EXPECT_TRUE(parsed.ok()) << question;
    return parsed.ok() ? parsed.value().assembled.interpretation
                       : std::string();
  }

  db::Table table_;
  core::CqadsEngine engine_;
};

TEST_F(ParseVariantsTest, UpperBoundSynonyms) {
  for (const char* q : {"accord under 9000 dollars",
                        "accord below 9000 dollars",
                        "accord less than 9000 dollars",
                        "accord price less than 9000"}) {
    EXPECT_EQ(Interp(q),
              "model = 'accord' AND price < 9000")
        << q;
  }
}

TEST_F(ParseVariantsTest, InclusiveBounds) {
  EXPECT_EQ(Interp("accord at most 9000 dollars"),
            "model = 'accord' AND price <= 9000");
  EXPECT_EQ(Interp("accord at least 9000 dollars"),
            "model = 'accord' AND price >= 9000");
  EXPECT_EQ(Interp("accord no more than 9000 dollars"),
            "model = 'accord' AND price <= 9000");
}

TEST_F(ParseVariantsTest, LowerBoundSynonyms) {
  for (const char* q : {"accord over 9000 dollars",
                        "accord above 9000 dollars",
                        "accord more than 9000 dollars"}) {
    EXPECT_EQ(Interp(q),
              "model = 'accord' AND price > 9000")
        << q;
  }
}

TEST_F(ParseVariantsTest, YearBoundsViaCompleteBoundaries) {
  EXPECT_EQ(Interp("accord newer than 2005"),
            "model = 'accord' AND year > 2005");
  EXPECT_EQ(Interp("accord older than 2005"),
            "model = 'accord' AND year < 2005");
  EXPECT_EQ(Interp("accord cheaper than 9000"),
            "model = 'accord' AND price < 9000");
}

TEST_F(ParseVariantsTest, SuperlativeSynonyms) {
  auto check_super = [&](const std::string& q, std::size_t attr,
                         bool ascending) {
    auto parsed = engine_.Parse("cars", q);
    ASSERT_TRUE(parsed.ok()) << q;
    ASSERT_TRUE(parsed.value().assembled.superlative.has_value()) << q;
    EXPECT_EQ(parsed.value().assembled.superlative->attr, attr) << q;
    EXPECT_EQ(parsed.value().assembled.superlative->ascending, ascending)
        << q;
  };
  check_super("cheapest honda", 3, true);
  check_super("most expensive honda", 3, false);
  check_super("newest honda", 2, false);
  check_super("oldest honda", 2, true);
  check_super("latest honda", 2, false);
  check_super("lowest mileage honda", 4, true);
  check_super("highest mileage honda", 4, false);
}

TEST_F(ParseVariantsTest, KSuffixAndCommaNumbersAgree) {
  EXPECT_EQ(Interp("accord under 9k dollars"),
            Interp("accord under $9,000"));
  EXPECT_EQ(Interp("accord with less than 20k miles"),
            Interp("accord with less than 20,000 miles"));
}

TEST_F(ParseVariantsTest, PartialTriggerOption) {
  core::CqadsEngine::Options opts;
  opts.partial_trigger = 1;  // only fetch partials when zero exact answers
  core::CqadsEngine engine(opts);
  ASSERT_TRUE(engine.AddDomain(&table_, qlog::TiMatrix()).ok());
  // This question has 1 exact answer: partials must NOT be fetched.
  auto r = engine.AskInDomain("cars",
                              "honda accord blue less than 15000 dollars");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().exact_count, 1u);
  EXPECT_EQ(r.value().answers.size(), 1u);
}

// ------------------------------------------------------------- generators

TEST(QuestionGenConditioningTest, PriceBoundsFollowClusterScale) {
  Rng rng(2024);
  const auto* spec = datagen::FindDomainSpec("cars");
  auto table = datagen::GenerateAds(*spec, 400, &rng);
  ASSERT_TRUE(table.ok());

  datagen::QuestionGenOptions opts;
  opts.p_boolean = 0;
  opts.p_superlative = 0;
  opts.p_partial_identity = 0;
  Rng qrng(7);
  auto questions = datagen::GenerateQuestions(*spec, table.value(), 400,
                                              opts, &qrng);
  // Average price-bound target for luxury identities should exceed the one
  // for economy identities.
  double lux_sum = 0, eco_sum = 0;
  int lux_n = 0, eco_n = 0;
  auto price_attr = spec->schema.Resolve("price");
  ASSERT_TRUE(price_attr.has_value());
  for (const auto& q : questions) {
    int cluster = -1;
    double bound = -1;
    for (const auto& seg : q.segments) {
      for (const auto& u : seg) {
        if (u.kind == datagen::IntentUnit::Kind::kIdentity) {
          cluster = u.cluster;
        }
        if (u.kind == datagen::IntentUnit::Kind::kTypeIII &&
            u.attr == *price_attr) {
          bound = u.lo;
        }
      }
    }
    if (bound < 0) continue;
    if (cluster == 4) {  // luxury
      lux_sum += bound;
      ++lux_n;
    } else if (cluster == 0) {  // economy compact
      eco_sum += bound;
      ++eco_n;
    }
  }
  ASSERT_GT(lux_n, 3);
  ASSERT_GT(eco_n, 3);
  EXPECT_GT(lux_sum / lux_n, eco_sum / eco_n);
}

TEST(SurveyMixTest, CarCountAndOthers) {
  datagen::WorldOptions options;
  options.seed = 11;
  options.ads_per_domain = 80;
  options.sessions_per_domain = 100;
  options.corpus_docs_per_domain = 20;
  auto world = datagen::World::Build(options);
  ASSERT_TRUE(world.ok());
  auto questions = eval::GenerateSurveyQuestions(*world.value(), 80, 82, 99);
  std::size_t total = 0;
  for (const auto& [domain, qs] : questions) total += qs.size();
  EXPECT_EQ(questions.at("cars").size(), 80u);
  EXPECT_EQ(total, 80u + 7u * 82u);  // ~654, the paper's 650
}

// ----------------------------------------------- experiments on 2nd domain

TEST(SecondDomainExperimentsTest, BooleanInterpretationOnJewellery) {
  datagen::WorldOptions options;
  options.seed = 21;
  options.ads_per_domain = 150;
  options.sessions_per_domain = 200;
  options.corpus_docs_per_domain = 30;
  options.domains = {"jewellery"};
  auto world = datagen::World::Build(options);
  ASSERT_TRUE(world.ok());
  auto result = eval::RunBooleanInterpretation(*world.value(), "jewellery",
                                               60, 6, 30, 5);
  EXPECT_GT(result.implicit_count + result.explicit_count, 40u);
  EXPECT_GT(result.overall_accuracy, 0.7);
  EXPECT_LE(result.sampled.size(), 6u);
}

TEST(SecondDomainExperimentsTest, SingleDomainWorldWorksEndToEnd) {
  datagen::WorldOptions options;
  options.seed = 31;
  options.ads_per_domain = 120;
  options.sessions_per_domain = 150;
  options.corpus_docs_per_domain = 25;
  options.domains = {"food_coupons"};
  auto world = datagen::World::Build(options);
  ASSERT_TRUE(world.ok());
  auto result = world.value()->engine().AskInDomain(
      "food_coupons", "pizza hut at least 20 percent off");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.value().interpretation.find("restaurant = 'pizza hut'"),
            std::string::npos);
  EXPECT_NE(result.value().interpretation.find("discount >= 20"),
            std::string::npos);
}

}  // namespace
}  // namespace cqads
