// Incremental ingestion: DeltaStore semantics (insert, tombstones, global
// id stability), hybrid base∪delta execution parity, retire-then-reinsert,
// single-row deltas, and the compaction invariant — after CompactDomain the
// engine answers byte-identically to an engine rebuilt from scratch on the
// merged rows. Also the compaction-racing-a-snapshot-swap test the TSan CI
// job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/answer_table.h"
#include "core/cqads_engine.h"
#include "db/exec/delta_exec.h"
#include "db/executor.h"
#include "db/storage/delta_store.h"
#include "test_fixtures.h"

namespace cqads {
namespace {

db::Record CarRecord(const char* make, const char* model, double year,
                     double price, double mileage, const char* color,
                     const char* transmission, const char* doors,
                     const char* drivetrain, const char* features) {
  db::Record r;
  r.push_back(db::Value::Text(make));
  r.push_back(db::Value::Text(model));
  r.push_back(db::Value::Real(year));
  r.push_back(db::Value::Real(price));
  r.push_back(db::Value::Real(mileage));
  r.push_back(db::Value::Text(color));
  r.push_back(db::Value::Text(transmission));
  r.push_back(db::Value::Text(doors));
  r.push_back(db::Value::Text(drivetrain));
  r.push_back(db::Value::Text(features));
  return r;
}

db::Predicate TextPred(std::size_t attr, const char* v,
                       db::CompareOp op = db::CompareOp::kEq) {
  db::Predicate p;
  p.attr = attr;
  p.op = op;
  p.value = db::Value::Text(v);
  return p;
}

// --------------------------------------------------------- DeltaStore

TEST(DeltaStoreTest, GlobalIdsAndTombstones) {
  db::Table base = testing::MiniCarTable();  // 13 rows
  db::DeltaStore delta(base.schema(), base.num_rows());
  EXPECT_TRUE(delta.empty());

  auto id = delta.Insert(CarRecord("honda", "fit", 2011, 9500, 40000, "blue",
                                   "automatic", "4 door", "2 wheel drive",
                                   "cd player"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 13u);  // base_rows + 0
  EXPECT_EQ(delta.total_rows(), 14u);
  EXPECT_FALSE(delta.empty());

  // Tombstone a base row, then a delta row.
  EXPECT_TRUE(delta.Retire(2).ok());
  EXPECT_EQ(delta.Retire(2).code(), StatusCode::kNotFound);  // double retire
  EXPECT_TRUE(delta.Retire(13).ok());
  EXPECT_EQ(delta.live_delta_rows(), 0u);
  EXPECT_FALSE(delta.empty());  // tombstones still mask the base

  EXPECT_EQ(delta.Retire(99).code(), StatusCode::kOutOfRange);

  // Arity/kind validation mirrors Table::Insert.
  EXPECT_FALSE(delta.Insert(db::Record{}).ok());
}

TEST(DeltaStoreTest, MergedRecordsOrder) {
  db::Table base = testing::MiniCarTable();
  db::DeltaStore delta(base.schema(), base.num_rows());
  auto a = delta.Insert(CarRecord("kia", "soul", 2012, 11000, 25000, "green",
                                  "manual", "4 door", "2 wheel drive", "usb"));
  auto b = delta.Insert(CarRecord("fiat", "500", 2013, 12000, 20000, "white",
                                  "manual", "2 door", "2 wheel drive",
                                  "bluetooth"));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(delta.Retire(0).ok());          // drop base row 0
  ASSERT_TRUE(delta.Retire(a.value()).ok());  // drop the kia again

  auto merged = delta.MergedRecords(base);
  // 13 - 1 base survivors + 1 delta survivor.
  ASSERT_EQ(merged.size(), 13u);
  EXPECT_EQ(merged.front(), base.row(1));           // base row 0 gone
  EXPECT_EQ(merged.back()[0], db::Value::Text("fiat"));
}

// ------------------------------------------------- hybrid execution

/// ExecuteHybrid over base∪delta must return, record-for-record, what the
/// same query returns against a single table built from the merged rows.
TEST(HybridExecTest, MatchesMergedTableRecordForRecord) {
  db::Table base = testing::MiniCarTable();
  db::DeltaStore delta(base.schema(), base.num_rows());
  ASSERT_TRUE(delta
                  .Insert(CarRecord("honda", "fit", 2011, 9500, 40000, "blue",
                                    "automatic", "4 door", "2 wheel drive",
                                    "cd player;bluetooth"))
                  .ok());
  ASSERT_TRUE(delta
                  .Insert(CarRecord("toyota", "prius", 2012, 13500, 35000,
                                    "silver", "automatic", "4 door",
                                    "2 wheel drive", "gps"))
                  .ok());
  ASSERT_TRUE(delta.Retire(0).ok());  // a blue honda accord leaves the pool
  ASSERT_TRUE(delta.Retire(5).ok());  // and the blue toyota camry

  db::Table merged(base.schema());
  for (auto& rec : delta.MergedRecords(base)) {
    ASSERT_TRUE(merged.Insert(std::move(rec)).ok());
  }
  merged.BuildIndexes();

  std::vector<db::Query> queries;
  {
    db::Query q;
    q.where = db::Expr::MakePredicate(TextPred(0, "honda"));
    q.limit = 30;
    queries.push_back(q);
  }
  {
    db::Query q;  // superlative across base and delta rows
    q.where = db::Expr::MakePredicate(TextPred(5, "blue"));
    q.superlative = db::Superlative{3, true};
    q.limit = 3;
    queries.push_back(q);
  }
  {
    db::Query q;  // negation must see tombstones and delta rows
    q.where = db::Expr::MakeNot(db::Expr::MakePredicate(TextPred(0, "honda")));
    q.limit = 30;
    queries.push_back(q);
  }
  {
    db::Query q;  // match-all
    q.limit = 100;
    queries.push_back(q);
  }

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    auto hybrid =
        db::exec::ExecuteHybrid(base, delta, queries[qi], {});
    auto expected = db::ExecuteQuery(merged, queries[qi]);
    ASSERT_TRUE(hybrid.ok() && expected.ok()) << "query " << qi;
    // Global hybrid ids and merged ids differ; compare materialized
    // records pairwise (both orders are deterministic).
    ASSERT_EQ(hybrid.value().rows.size(), expected.value().rows.size())
        << "query " << qi;
    for (std::size_t i = 0; i < hybrid.value().rows.size(); ++i) {
      const db::RowId h = hybrid.value().rows[i];
      db::Record got = h < base.num_rows()
                           ? base.row(h)
                           : delta.record(h - base.num_rows());
      EXPECT_EQ(got, merged.row(expected.value().rows[i]))
          << "query " << qi << " answer " << i;
    }
  }
}

// ------------------------------------------------- engine integration

class IngestEngineTest : public ::testing::Test {
 protected:
  IngestEngineTest() : table_(testing::MiniCarTable()) {
    EXPECT_TRUE(engine_.AddDomain(&table_, qlog::TiMatrix()).ok());
    EXPECT_TRUE(engine_.TrainClassifier().ok());
  }

  std::string CanonicalAsk(core::CqadsEngine& e, const std::string& q) {
    auto r = e.AskInDomain("cars", q);
    return r.ok() ? core::CanonicalAskResultString(r.value()) : "ERROR";
  }

  /// Exact answers materialized to records (row ids shift across a
  /// compaction; the records must not).
  std::vector<db::Record> ExactRecords(const std::string& q) {
    auto r = engine_.AskInDomain("cars", q);
    EXPECT_TRUE(r.ok());
    const core::DomainRuntime* rt = engine_.runtime("cars");
    std::vector<db::Record> out;
    if (!r.ok() || rt == nullptr) return out;
    for (const auto& a : r.value().answers) {
      if (!a.exact) continue;
      out.push_back(a.row < rt->table->num_rows()
                        ? rt->table->row(a.row)
                        : rt->delta->record(a.row - rt->table->num_rows()));
    }
    return out;
  }

  db::Table table_;
  core::CqadsEngine engine_;
};

TEST_F(IngestEngineTest, SingleRowDeltaIsVisibleImmediately) {
  auto before = engine_.AskInDomain("cars", "gold honda");
  ASSERT_TRUE(before.ok());
  const std::size_t before_exact = before.value().exact_count;

  auto id = engine_.IngestAd(
      "cars", CarRecord("honda", "accord", 2009, 12000, 50000, "gold",
                        "automatic", "4 door", "2 wheel drive", "cd player"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 13u);

  auto after = engine_.AskInDomain("cars", "gold honda");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().exact_count, before_exact + 1);
  bool found = false;
  for (const auto& a : after.value().answers) {
    if (a.row == id.value()) found = a.exact;
  }
  EXPECT_TRUE(found) << "delta row missing from exact answers";

  // Retire it again: the answer set returns to the pre-ingest state.
  ASSERT_TRUE(engine_.RetireAd("cars", id.value()).ok());
  auto retired = engine_.AskInDomain("cars", "gold honda");
  ASSERT_TRUE(retired.ok());
  EXPECT_EQ(core::CanonicalAskResultString(retired.value()),
            core::CanonicalAskResultString(before.value()));
}

TEST_F(IngestEngineTest, AnswerTableRendersDeltaRowValues) {
  ASSERT_TRUE(engine_
                  .IngestAd("cars", CarRecord("honda", "fit", 2011, 9500,
                                              40000, "gold", "automatic",
                                              "4 door", "2 wheel drive",
                                              "cd player"))
                  .ok());
  auto r = engine_.AskInDomain("cars", "gold honda");
  ASSERT_TRUE(r.ok());
  const core::DomainRuntime* rt = engine_.runtime("cars");
  ASSERT_NE(rt, nullptr);
  std::string with_delta = core::FormatAnswersText(
      *rt->table, r.value(), core::AnswerTableOptions(), rt->delta.get());
  EXPECT_NE(with_delta.find("fit"), std::string::npos) << with_delta;
  EXPECT_EQ(with_delta.find("(delta row)"), std::string::npos) << with_delta;
  // Without the delta the renderer falls back to the placeholder rather
  // than reading past the base table.
  std::string without =
      core::FormatAnswersText(*rt->table, r.value());
  EXPECT_NE(without.find("(delta row)"), std::string::npos) << without;
}

TEST_F(IngestEngineTest, RetireBaseRowMasksItEverywhere) {
  // Row 2 is the 2002 gold accord.
  ASSERT_TRUE(engine_.RetireAd("cars", 2).ok());
  auto r = engine_.AskInDomain("cars", "gold honda");
  ASSERT_TRUE(r.ok());
  for (const auto& a : r.value().answers) EXPECT_NE(a.row, 2u);
}

TEST_F(IngestEngineTest, RetireThenReinsertSameAd) {
  // Retire base row 0 (2007 blue accord), then reinsert the identical
  // record through the delta: queries must see exactly one copy, under the
  // new global id.
  const db::Record original = table_.row(0);
  ASSERT_TRUE(engine_.RetireAd("cars", 0).ok());
  auto re = engine_.IngestAd("cars", original);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(re.value(), 13u);

  auto r = engine_.AskInDomain("cars", "blue honda accord");
  ASSERT_TRUE(r.ok());
  std::size_t copies = 0;
  for (const auto& a : r.value().answers) {
    if (a.row == 0u) ADD_FAILURE() << "retired row still answered";
    if (a.row == re.value()) ++copies;
  }
  EXPECT_EQ(copies, 1u);

  // Compact: the reinserted copy survives, the tombstoned original stays
  // gone, and the table shrinks back to 13 rows.
  ASSERT_TRUE(engine_.CompactDomain("cars").ok());
  const core::DomainRuntime* rt = engine_.runtime("cars");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->table->num_rows(), 13u);
  EXPECT_EQ(rt->delta, nullptr);
  auto post = engine_.AskInDomain("cars", "blue honda accord");
  ASSERT_TRUE(post.ok());
  std::size_t post_copies = 0;
  for (const auto& a : post.value().answers) {
    if (rt->table->row(a.row) == original) ++post_copies;
  }
  EXPECT_EQ(post_copies, 1u);
}

/// The PR's acceptance invariant: ingest + retire + compact ==
/// from-scratch rebuild on the merged rows, byte-identical answers.
TEST_F(IngestEngineTest, CompactionMatchesFromScratchRebuild) {
  ASSERT_TRUE(engine_
                  .IngestAd("cars", CarRecord("honda", "fit", 2011, 9500,
                                              40000, "blue", "automatic",
                                              "4 door", "2 wheel drive",
                                              "cd player;bluetooth"))
                  .ok());
  ASSERT_TRUE(engine_
                  .IngestAd("cars", CarRecord("toyota", "prius", 2012, 13500,
                                              35000, "silver", "automatic",
                                              "4 door", "2 wheel drive",
                                              "gps"))
                  .ok());
  ASSERT_TRUE(engine_.RetireAd("cars", 4).ok());   // chevy malibu
  ASSERT_TRUE(engine_.RetireAd("cars", 14).ok());  // the prius again
  ASSERT_TRUE(engine_.CompactDomain("cars").ok());
  // Compaction keeps the stale classifier; retrain so the full Ask path is
  // comparable too.
  ASSERT_TRUE(engine_.TrainClassifier().ok());

  // The from-scratch twin: a fresh table holding the same merged rows.
  const core::DomainRuntime* rt = engine_.runtime("cars");
  ASSERT_NE(rt, nullptr);
  db::Table rebuilt(table_.schema());
  for (db::RowId r = 0; r < rt->table->num_rows(); ++r) {
    ASSERT_TRUE(rebuilt.Insert(rt->table->row(r)).ok());
  }
  rebuilt.BuildIndexes();
  core::CqadsEngine twin;
  ASSERT_TRUE(twin.AddDomain(&rebuilt, qlog::TiMatrix()).ok());
  ASSERT_TRUE(twin.TrainClassifier().ok());

  const std::vector<std::string> questions = {
      "blue honda",
      "honda fit with bluetooth",
      "cheapest toyota",
      "silver car",
      "automatic under 10000 dollars",
      "manual red car with cd player",
      "chevy malibu",
  };
  for (const auto& q : questions) {
    EXPECT_EQ(CanonicalAsk(engine_, q), CanonicalAsk(twin, q)) << q;
  }
}

/// Ingest + compaction with a PARTITIONED store: the compacted table is
/// re-sharded and answers stay identical to the monolithic twin.
TEST_F(IngestEngineTest, CompactionRepartitionsShardedStores) {
  core::EngineOptions options;
  options.partition_rows = 4;
  engine_.SetOptions(options);

  ASSERT_TRUE(engine_
                  .IngestAd("cars", CarRecord("honda", "fit", 2011, 9500,
                                              40000, "blue", "automatic",
                                              "4 door", "2 wheel drive",
                                              "cd player"))
                  .ok());
  ASSERT_TRUE(engine_.RetireAd("cars", 1).ok());
  auto with_delta = ExactRecords("blue honda");
  // The ingested fit is already an exact answer pre-compaction.
  bool fit_found = false;
  for (const auto& rec : with_delta) {
    fit_found = fit_found || rec[1] == db::Value::Text("fit");
  }
  EXPECT_TRUE(fit_found);
  ASSERT_TRUE(engine_.CompactDomain("cars").ok());

  const core::DomainRuntime* rt = engine_.runtime("cars");
  ASSERT_NE(rt, nullptr);
  ASSERT_NE(rt->partitions, nullptr);
  EXPECT_EQ(rt->partitions->num_partitions(), 4u);  // 13 rows / 4
  EXPECT_EQ(rt->partitions->base().num_rows(), 13u);

  // Row ids are renumbered by compaction, but the answered RECORDS are
  // unchanged.
  EXPECT_EQ(ExactRecords("blue honda"), with_delta);
}

TEST_F(IngestEngineTest, IngestValidatesDomainAndRecord) {
  EXPECT_FALSE(engine_.IngestAd("boats", CarRecord("a", "b", 1, 1, 1, "c",
                                                   "d", "e", "f", "g"))
                   .ok());
  EXPECT_FALSE(engine_.IngestAd("cars", db::Record{}).ok());
  EXPECT_FALSE(engine_.RetireAd("cars", 9999).ok());
}

/// Compaction racing queries and option-driven snapshot swaps: the TSan CI
/// job runs this. Queries must never block, crash, or read torn state.
TEST_F(IngestEngineTest, CompactionRacesSnapshotSwap) {
  std::atomic<bool> stop{false};
  std::atomic<int> asked{0};

  std::thread asker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = engine_.AskInDomain("cars", "blue honda accord");
      ASSERT_TRUE(r.ok());
      asked.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread swapper([&] {
    for (int i = 0; i < 5; ++i) {
      core::EngineOptions o;
      o.partition_rows = (i % 2 == 0) ? 4 : 0;
      engine_.SetOptions(o);
    }
  });

  for (int round = 0; round < 4; ++round) {
    auto id = engine_.IngestAd(
        "cars", CarRecord("honda", "accord", 2010 + round, 9000 + round * 10,
                          45000, "blue", "automatic", "4 door",
                          "2 wheel drive", "cd player"));
    ASSERT_TRUE(id.ok());
    // Each round starts a fresh delta (the previous compaction cleared it),
    // so row 0 of the current base is always retirable.
    if (round % 2 == 1) {
      ASSERT_TRUE(engine_.RetireAd("cars", 0).ok());
    }
    ASSERT_TRUE(engine_.CompactDomain("cars").ok());
  }

  swapper.join();
  stop.store(true);
  asker.join();
  EXPECT_GT(asked.load(), 0);

  // Steady state after the storm: 13 base rows + 4 ingested - retires.
  const core::DomainRuntime* rt = engine_.runtime("cars");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->delta, nullptr);
  auto final_ask = engine_.AskInDomain("cars", "blue honda accord");
  EXPECT_TRUE(final_ask.ok());
}

}  // namespace
}  // namespace cqads
