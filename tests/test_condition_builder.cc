#include "core/condition_builder.h"

#include <gtest/gtest.h>

#include "core/question_tagger.h"
#include "test_fixtures.h"

namespace cqads::core {
namespace {

class ConditionBuilderTest : public ::testing::Test {
 protected:
  ConditionBuilderTest() : table_(cqads::testing::MiniCarTable()) {
    auto lex = DomainLexicon::Build(&table_);
    lexicon_ = std::make_unique<DomainLexicon>(std::move(lex).value());
    tagger_ = std::make_unique<QuestionTagger>(lexicon_.get());
  }

  BuiltConditions Build(const std::string& question) {
    return BuildConditions(tagger_->Tag(question).items, table_.schema());
  }

  db::Table table_;
  std::unique_ptr<DomainLexicon> lexicon_;
  std::unique_ptr<QuestionTagger> tagger_;
};

TEST(ComplementOpTest, AllComplements) {
  using Op = db::CompareOp;
  EXPECT_EQ(ComplementOp(Op::kLt), Op::kGe);
  EXPECT_EQ(ComplementOp(Op::kLe), Op::kGt);
  EXPECT_EQ(ComplementOp(Op::kGt), Op::kLe);
  EXPECT_EQ(ComplementOp(Op::kGe), Op::kLt);
  EXPECT_EQ(ComplementOp(Op::kEq), Op::kNe);
  EXPECT_EQ(ComplementOp(Op::kNe), Op::kEq);
}

TEST(MoneyAttrTest, DetectsCurrencyUnits) {
  auto schema = cqads::testing::MiniCarSchema();
  EXPECT_TRUE(IsMoneyAttribute(schema.attribute(3)));   // price
  EXPECT_FALSE(IsMoneyAttribute(schema.attribute(4)));  // mileage
}

TEST_F(ConditionBuilderTest, TypeIAndTypeII) {
  auto built = Build("blue honda accord");
  ASSERT_EQ(built.conditions.size(), 3u);
  EXPECT_EQ(built.conditions[0].kind, Condition::Kind::kTypeII);
  EXPECT_EQ(built.conditions[0].value, "blue");
  EXPECT_EQ(built.conditions[1].kind, Condition::Kind::kTypeI);
  EXPECT_EQ(built.conditions[2].kind, Condition::Kind::kTypeI);
}

TEST_F(ConditionBuilderTest, BoundWithTrailingUnit) {
  // "less than 20k miles": op + number + unit resolves to mileage.
  auto built = Build("accord less than 20k miles");
  ASSERT_EQ(built.conditions.size(), 2u);
  const Condition& c = built.conditions[1];
  EXPECT_EQ(c.kind, Condition::Kind::kTypeIIIBound);
  EXPECT_EQ(c.attr, 4u);
  EXPECT_EQ(c.op, db::CompareOp::kLt);
  EXPECT_DOUBLE_EQ(c.lo, 20000.0);
}

TEST_F(ConditionBuilderTest, BoundWithLeadingAttrName) {
  auto built = Build("accord mileage less than 20000");
  ASSERT_EQ(built.conditions.size(), 2u);
  EXPECT_EQ(built.conditions[1].attr, 4u);
  EXPECT_EQ(built.conditions[1].op, db::CompareOp::kLt);
}

TEST_F(ConditionBuilderTest, MoneyBindsToPrice) {
  auto built = Build("accord under $5000");
  ASSERT_EQ(built.conditions.size(), 2u);
  EXPECT_EQ(built.conditions[1].attr, 3u);  // price
  EXPECT_EQ(built.conditions[1].kind, Condition::Kind::kTypeIIIBound);
}

TEST_F(ConditionBuilderTest, BareNumberIsAmbiguous) {
  // Example 3: "Honda accord 2000".
  auto built = Build("honda accord 2000");
  ASSERT_EQ(built.conditions.size(), 3u);
  const Condition& c = built.conditions[2];
  EXPECT_EQ(c.kind, Condition::Kind::kAmbiguousNumber);
  EXPECT_EQ(c.op, db::CompareOp::kEq);
  EXPECT_DOUBLE_EQ(c.lo, 2000.0);
}

TEST_F(ConditionBuilderTest, BareBoundIsAmbiguous) {
  // Example 3: "Honda accord less than 4000".
  auto built = Build("honda accord less than 4000");
  const Condition& c = built.conditions[2];
  EXPECT_EQ(c.kind, Condition::Kind::kAmbiguousNumber);
  EXPECT_EQ(c.op, db::CompareOp::kLt);
}

TEST_F(ConditionBuilderTest, BetweenTwoOperands) {
  auto built = Build("accord between 2000 and 7000 dollars");
  ASSERT_EQ(built.conditions.size(), 2u);
  const Condition& c = built.conditions[1];
  EXPECT_EQ(c.op, db::CompareOp::kBetween);
  EXPECT_DOUBLE_EQ(c.lo, 2000.0);
  EXPECT_DOUBLE_EQ(c.hi, 7000.0);
  EXPECT_EQ(c.attr, 3u);  // unit after second operand binds price
  // The "and" between operands is not an explicit Boolean operator.
  EXPECT_FALSE(built.has_explicit_and);
}

TEST_F(ConditionBuilderTest, BetweenSwapsInvertedOperands) {
  auto built = Build("accord price between 7000 and 2000");
  const Condition& c = built.conditions[1];
  EXPECT_DOUBLE_EQ(c.lo, 2000.0);
  EXPECT_DOUBLE_EQ(c.hi, 7000.0);
}

TEST_F(ConditionBuilderTest, UnfinishedBetweenDegradesToGe) {
  auto built = Build("accord price between 2000");
  const Condition& c = built.conditions[1];
  EXPECT_EQ(c.op, db::CompareOp::kGe);
  EXPECT_DOUBLE_EQ(c.lo, 2000.0);
}

TEST_F(ConditionBuilderTest, NegatedOperatorComplemented) {
  // Example 6 Q1: "not less than $2000" -> price >= 2000 (rule 1a).
  auto built = Build("car priced below $7000 and not less than $2000");
  ASSERT_EQ(built.conditions.size(), 2u);
  EXPECT_EQ(built.conditions[0].op, db::CompareOp::kLt);
  EXPECT_DOUBLE_EQ(built.conditions[0].lo, 7000.0);
  EXPECT_EQ(built.conditions[1].op, db::CompareOp::kGe);
  EXPECT_DOUBLE_EQ(built.conditions[1].lo, 2000.0);
  EXPECT_FALSE(built.conditions[1].negated);
}

TEST_F(ConditionBuilderTest, NegatedValueFlagged) {
  auto built = Build("not blue accord");
  ASSERT_EQ(built.conditions.size(), 2u);
  EXPECT_TRUE(built.conditions[0].negated);
  EXPECT_FALSE(built.conditions[1].negated);
}

TEST_F(ConditionBuilderTest, SuperlativeComplete) {
  auto built = Build("cheapest honda");
  ASSERT_EQ(built.conditions.size(), 2u);
  EXPECT_EQ(built.conditions[0].kind, Condition::Kind::kSuperlative);
  EXPECT_EQ(built.conditions[0].attr, 3u);
  EXPECT_TRUE(built.conditions[0].ascending);
}

TEST_F(ConditionBuilderTest, NewestIsDescendingYear) {
  auto built = Build("newest accord");
  EXPECT_EQ(built.conditions[0].kind, Condition::Kind::kSuperlative);
  EXPECT_EQ(built.conditions[0].attr, 2u);
  EXPECT_FALSE(built.conditions[0].ascending);
}

TEST_F(ConditionBuilderTest, PartialSuperlativeMergesWithAttr) {
  auto built = Build("lowest mileage accord");
  ASSERT_EQ(built.conditions.size(), 2u);
  EXPECT_EQ(built.conditions[0].kind, Condition::Kind::kSuperlative);
  EXPECT_EQ(built.conditions[0].attr, 4u);
  EXPECT_TRUE(built.conditions[0].ascending);
}

TEST_F(ConditionBuilderTest, PartialSuperlativeAttrBefore) {
  auto built = Build("accord with mileage lowest");
  bool found = false;
  for (const auto& c : built.conditions) {
    if (c.kind == Condition::Kind::kSuperlative) {
      EXPECT_EQ(c.attr, 4u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ConditionBuilderTest, DanglingPartialSuperlativeDefaultsToPrice) {
  auto built = Build("lowest honda");
  bool found = false;
  for (const auto& c : built.conditions) {
    if (c.kind == Condition::Kind::kSuperlative) {
      EXPECT_EQ(c.attr, 3u);  // price
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ConditionBuilderTest, ExplicitOperatorsRecorded) {
  auto built = Build("toyota corolla or honda accord");
  EXPECT_TRUE(built.has_explicit_or);
  ASSERT_EQ(built.operators.size(), 1u);
  EXPECT_EQ(built.operators[0].kind, TagKind::kOr);
  EXPECT_EQ(built.operators[0].order, 2u);  // before the third condition
}

TEST_F(ConditionBuilderTest, OrdersAreSequential) {
  auto built = Build("blue automatic honda accord under 9000 dollars");
  for (std::size_t i = 0; i < built.conditions.size(); ++i) {
    EXPECT_EQ(built.conditions[i].order, i);
  }
}

}  // namespace
}  // namespace cqads::core
