#include "common/string_util.h"

#include <gtest/gtest.h>

namespace cqads {
namespace {

TEST(ToLowerTest, MixedCase) { EXPECT_EQ(ToLower("Honda AcCoRd"), "honda accord"); }
TEST(ToLowerTest, NonAlphaUntouched) { EXPECT_EQ(ToLower("$5,000-X"), "$5,000-x"); }
TEST(ToLowerTest, Empty) { EXPECT_EQ(ToLower(""), ""); }
TEST(ToUpperTest, Basic) { EXPECT_EQ(ToUpper("abc1"), "ABC1"); }

TEST(TrimTest, BothEnds) { EXPECT_EQ(Trim("  a b \t\n"), "a b"); }
TEST(TrimTest, NothingToTrim) { EXPECT_EQ(Trim("ab"), "ab"); }
TEST(TrimTest, AllWhitespace) { EXPECT_EQ(Trim(" \t "), ""); }
TEST(TrimTest, ViewSharesStorage) {
  std::string s = " xy ";
  std::string_view v = TrimView(s);
  EXPECT_EQ(v, "xy");
  EXPECT_GE(v.data(), s.data());
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a;;b;", ';');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}
TEST(SplitTest, NoSeparator) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespaceTest, DropsEmptyFields) {
  auto parts = SplitWhitespace("  a \t b\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}
TEST(SplitWhitespaceTest, Empty) {
  EXPECT_TRUE(SplitWhitespace("  ").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}
TEST(JoinTest, SingleAndEmpty) {
  EXPECT_EQ(Join({"x"}, "-"), "x");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("honda accord", "honda"));
  EXPECT_FALSE(StartsWith("honda", "honda accord"));
  EXPECT_TRUE(EndsWith("honda accord", "accord"));
  EXPECT_FALSE(EndsWith("accord", "honda accord"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ReplaceAllTest, Multiple) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
}
TEST(ReplaceAllTest, NoOverlapReprocessing) {
  EXPECT_EQ(ReplaceAll("aaa", "aa", "a"), "aa");
}
TEST(ReplaceAllTest, EmptyFrom) {
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(IsDigitsTest, Cases) {
  EXPECT_TRUE(IsDigits("007"));
  EXPECT_FALSE(IsDigits("2dr"));
  EXPECT_FALSE(IsDigits(""));
}
TEST(IsAlphaTest, Cases) {
  EXPECT_TRUE(IsAlpha("honda"));
  EXPECT_FALSE(IsAlpha("m3"));
  EXPECT_FALSE(IsAlpha(""));
}

TEST(EqualsIgnoreCaseTest, Cases) {
  EXPECT_TRUE(EqualsIgnoreCase("Honda", "hONDA"));
  EXPECT_FALSE(EqualsIgnoreCase("honda", "hondas"));
}

struct EditDistanceCase {
  const char* a;
  const char* b;
  std::size_t expected;
};

class EditDistanceTest : public ::testing::TestWithParam<EditDistanceCase> {};

TEST_P(EditDistanceTest, MatchesExpected) {
  const auto& c = GetParam();
  EXPECT_EQ(EditDistance(c.a, c.b), c.expected);
  EXPECT_EQ(EditDistance(c.b, c.a), c.expected) << "symmetry";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EditDistanceTest,
    ::testing::Values(EditDistanceCase{"", "", 0},
                      EditDistanceCase{"a", "", 1},
                      EditDistanceCase{"kitten", "sitting", 3},
                      EditDistanceCase{"honda", "hondaa", 1},
                      EditDistanceCase{"accord", "accorr", 1},
                      EditDistanceCase{"flaw", "lawn", 2},
                      EditDistanceCase{"same", "same", 0}));

TEST(EditDistanceProperty, TriangleInequalityOnSamples) {
  const char* words[] = {"honda", "accord", "camry", "corolla", "h"};
  for (const char* a : words) {
    for (const char* b : words) {
      for (const char* c : words) {
        EXPECT_LE(EditDistance(a, c),
                  EditDistance(a, b) + EditDistance(b, c));
      }
    }
  }
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(ThousandsTest, Cases) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(16536), "16,536");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(-5000), "-5,000");
}

}  // namespace
}  // namespace cqads
