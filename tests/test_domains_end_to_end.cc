// Per-domain end-to-end checks, parameterized over all eight domains: clean
// generated questions must retrieve exactly the oracle's rows, and every
// domain's lexicon, ranges, and partial matching must behave.
#include <gtest/gtest.h>

#include "datagen/ads_generator.h"
#include "datagen/question_gen.h"
#include "db/executor.h"
#include "eval/experiments.h"

namespace cqads {
namespace {

class DomainEndToEndTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 777;
    options.ads_per_domain = 220;
    options.sessions_per_domain = 400;
    options.corpus_docs_per_domain = 60;
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static datagen::World* world_;
};

datagen::World* DomainEndToEndTest::world_ = nullptr;

TEST_P(DomainEndToEndTest, LexiconCoversAllCategoricalValues) {
  const std::string& domain = GetParam();
  const auto* rt = world_->engine().runtime(domain);
  ASSERT_NE(rt, nullptr);
  const auto* table = world_->table(domain);
  const db::Schema& schema = table->schema();
  for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
    const db::HashIndex* idx = table->hash_index(a);
    if (idx == nullptr) continue;
    for (const auto& value : idx->Keys()) {
      EXPECT_TRUE(rt->lexicon->trie().Contains(value))
          << domain << ": missing " << value;
    }
  }
}

TEST_P(DomainEndToEndTest, AttrRangesPositiveForNumerics) {
  const std::string& domain = GetParam();
  const auto* rt = world_->engine().runtime(domain);
  ASSERT_NE(rt, nullptr);
  for (std::size_t a : world_->table(domain)->schema().NumericAttrs()) {
    EXPECT_GT(rt->attr_ranges[a], 0.0) << domain << " attr " << a;
  }
}

TEST_P(DomainEndToEndTest, CleanQuestionsRetrieveOracleRows) {
  const std::string& domain = GetParam();
  const auto* spec = world_->spec(domain);
  const auto* table = world_->table(domain);
  // Clean questions: no perturbations, no Boolean, no incompleteness.
  datagen::QuestionGenOptions opts;
  opts.p_misspell = 0;
  opts.p_missing_space = 0;
  opts.p_shorthand = 0;
  opts.p_incomplete = 0;
  opts.p_boolean = 0;
  opts.p_superlative = 0;
  Rng rng(1234);
  auto questions = datagen::GenerateQuestions(*spec, *table, 30, opts, &rng);

  db::Executor exec(table);
  std::size_t checked = 0;
  for (const auto& q : questions) {
    if (q.is_incomplete) continue;  // equality bounds render as bare numbers
    db::Query oracle = q.oracle;
    oracle.limit = table->num_rows();
    auto truth = exec.Execute(oracle);
    ASSERT_TRUE(truth.ok());
    if (truth.value().rows.empty()) continue;

    auto asked = world_->engine().AskInDomain(domain, q.text);
    ASSERT_TRUE(asked.ok()) << q.text;
    std::vector<db::RowId> retrieved;
    for (const auto& a : asked.value().answers) {
      if (a.exact) retrieved.push_back(a.row);
    }
    std::sort(retrieved.begin(), retrieved.end());
    std::vector<db::RowId> expected = truth.value().rows;
    if (expected.size() > 30) expected.resize(30);
    // Exact answers must be a subset of the oracle rows, and when the
    // oracle set is small, equal to it.
    for (db::RowId r : retrieved) {
      EXPECT_TRUE(std::binary_search(truth.value().rows.begin(),
                                     truth.value().rows.end(), r))
          << domain << ": " << q.text;
    }
    if (truth.value().rows.size() <= 30) {
      EXPECT_EQ(retrieved, truth.value().rows) << domain << ": " << q.text;
    }
    ++checked;
  }
  EXPECT_GE(checked, 10u) << domain;
}

TEST_P(DomainEndToEndTest, PartialMatchingKicksInWhenExactScarce) {
  const std::string& domain = GetParam();
  const auto* spec = world_->spec(domain);
  const auto* table = world_->table(domain);
  datagen::QuestionGenOptions opts;
  opts.p_misspell = 0;
  opts.p_missing_space = 0;
  opts.p_shorthand = 0;
  opts.p_incomplete = 0;
  opts.p_boolean = 0;
  opts.p_superlative = 0;
  opts.max_type_ii = 2;
  Rng rng(4321);
  auto questions = datagen::GenerateQuestions(*spec, *table, 40, opts, &rng);

  std::size_t with_partials = 0;
  for (const auto& q : questions) {
    auto asked = world_->engine().AskInDomain(domain, q.text);
    if (!asked.ok()) continue;
    const auto& r = asked.value();
    if (r.contradiction) continue;
    if (r.exact_count < 30 && r.answers.size() > r.exact_count) {
      ++with_partials;
      // Partials are ordered by non-increasing Rank_Sim.
      for (std::size_t i = r.exact_count + 1; i < r.answers.size(); ++i) {
        EXPECT_GE(r.answers[i - 1].rank_sim, r.answers[i].rank_sim);
      }
    }
  }
  EXPECT_GT(with_partials, 0u) << domain;
}

TEST_P(DomainEndToEndTest, SqlAlwaysWellFormed) {
  const std::string& domain = GetParam();
  const auto* spec = world_->spec(domain);
  const auto* table = world_->table(domain);
  datagen::QuestionGenOptions opts;
  Rng rng(999);
  auto questions = datagen::GenerateQuestions(*spec, *table, 25, opts, &rng);
  for (const auto& q : questions) {
    auto parsed = world_->engine().Parse(domain, q.text);
    ASSERT_TRUE(parsed.ok()) << q.text;
    const std::string& sql = parsed.value().sql;
    EXPECT_EQ(sql.find("SELECT * FROM "), 0u) << q.text;
    EXPECT_NE(sql.find("LIMIT 30"), std::string::npos) << q.text;
    // Balanced parentheses.
    int depth = 0;
    for (char c : sql) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      ASSERT_GE(depth, 0) << sql;
    }
    EXPECT_EQ(depth, 0) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEight, DomainEndToEndTest,
    ::testing::Values("cars", "motorcycles", "clothing", "cs_jobs",
                      "furniture", "food_coupons", "instruments",
                      "jewellery"));

}  // namespace
}  // namespace cqads
