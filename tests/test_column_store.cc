// Unit tests for the columnar storage layer: dictionary encoding, packed
// numeric columns with null bitmaps, pre-tokenized text-list postings, and
// the materialized row view.
#include "db/storage/column_store.h"

#include <cmath>
#include <gtest/gtest.h>

#include "db/table.h"
#include "test_fixtures.h"

namespace cqads::db {
namespace {

TEST(ColumnStoreTest, DictionaryEncodesCategoricalColumns) {
  Table t = cqads::testing::MiniCarTable();
  const ColumnStore& store = t.store();
  // 13 rows but only 7 distinct makes: the dictionary deduplicates.
  EXPECT_EQ(store.num_rows(), 13u);
  EXPECT_EQ(store.dictionary(0).size(), 7u);
  // Two honda rows share one code.
  EXPECT_EQ(store.dict_code(0, 0), store.dict_code(1, 0));
  EXPECT_NE(store.dict_code(0, 0), store.dict_code(4, 0));  // honda vs chevy
}

TEST(ColumnStoreTest, CellReturnsStableDictionaryReference) {
  Table t = cqads::testing::MiniCarTable();
  const Value& a = t.cell(0, 0);
  const Value& b = t.cell(1, 0);
  EXPECT_EQ(&a, &b);  // same dictionary entry, same address
  EXPECT_EQ(a.text(), "honda");
}

TEST(ColumnStoreTest, PackedNumericColumnMatchesCells) {
  Table t = cqads::testing::MiniCarTable();
  const ColumnStore& store = t.store();
  const auto& packed = store.numeric_column(3);  // price
  ASSERT_EQ(packed.size(), store.num_rows());
  for (RowId r = 0; r < store.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(packed[r], t.cell(r, 3).AsDouble());
  }
}

TEST(ColumnStoreTest, NullBitmapAndNaNForNullNumerics) {
  Table t(cqads::testing::MiniCarSchema());
  Record rec(10);
  rec[0] = Value::Text("honda");
  rec[1] = Value::Text("accord");
  // year (2), price (3) left NULL.
  ASSERT_TRUE(t.Insert(std::move(rec)).ok());
  const ColumnStore& store = t.store();
  EXPECT_TRUE(store.is_null(0, 3));
  EXPECT_TRUE(std::isnan(store.numeric_column(3)[0]));
  EXPECT_EQ(store.null_bitmap(3)[0] & 1u, 1u);
  EXPECT_FALSE(store.is_null(0, 0));
  EXPECT_EQ(store.null_bitmap(0)[0] & 1u, 0u);
  EXPECT_TRUE(store.cell(0, 2).is_null());
}

TEST(ColumnStoreTest, IntAndRealDictEntriesStayDistinct) {
  db::Attribute id;
  id.name = "id";
  id.attr_type = AttrType::kTypeI;
  id.data_kind = DataKind::kCategorical;
  db::Attribute qty;
  qty.name = "qty";
  qty.attr_type = AttrType::kTypeIII;
  qty.data_kind = DataKind::kNumeric;
  Table t(Schema("things", {id, qty}));
  ASSERT_TRUE(t.Insert({Value::Text("a"), Value::Int(5)}).ok());
  ASSERT_TRUE(t.Insert({Value::Text("b"), Value::Real(5.0)}).ok());
  const ColumnStore& store = t.store();
  // Same numeric magnitude, different payload kinds: both dictionary
  // entries survive and each cell keeps its original kind.
  EXPECT_EQ(store.dictionary(1).size(), 2u);
  EXPECT_TRUE(t.cell(0, 1).is_int());
  EXPECT_TRUE(t.cell(1, 1).is_real());
  EXPECT_DOUBLE_EQ(store.numeric_column(1)[0], 5.0);
  EXPECT_DOUBLE_EQ(store.numeric_column(1)[1], 5.0);
}

TEST(ColumnStoreTest, TextListElementsPreTokenized) {
  Table t = cqads::testing::MiniCarTable();
  const ColumnStore& store = t.store();
  auto [begin, end] = store.ElementSpan(0, 9);  // "cd player;power steering"
  ASSERT_EQ(end - begin, 2);
  const auto& dict = store.element_dictionary(9);
  EXPECT_EQ(dict[begin[0]], "cd player");
  EXPECT_EQ(dict[begin[1]], "power steering");
  // "cd player" appears in many rows but is interned once.
  std::size_t cd_count = 0;
  for (const auto& e : dict) cd_count += (e == "cd player");
  EXPECT_EQ(cd_count, 1u);
}

TEST(ColumnStoreTest, CategoricalCellIsItsOwnSingleElement) {
  Table t = cqads::testing::MiniCarTable();
  const ColumnStore& store = t.store();
  auto [begin, end] = store.ElementSpan(0, 5);  // color = blue
  ASSERT_EQ(end - begin, 1);
  EXPECT_EQ(store.element_dictionary(5)[begin[0]], "blue");
  // Numeric columns expose no element spans.
  auto [nbegin, nend] = store.ElementSpan(0, 3);
  EXPECT_EQ(nbegin, nend);
}

TEST(ColumnStoreTest, MaterializedRowRoundTrips) {
  Table t = cqads::testing::MiniCarTable();
  Record rec = t.row(2);
  ASSERT_EQ(rec.size(), 10u);
  for (std::size_t a = 0; a < rec.size(); ++a) {
    EXPECT_TRUE(rec[a] == t.cell(2, a)) << "attr " << a;
  }
  // The materialized record re-inserts cleanly (dedup's copy path).
  Table copy(cqads::testing::MiniCarSchema());
  EXPECT_TRUE(copy.Insert(std::move(rec)).ok());
  EXPECT_EQ(copy.cell(0, 1).text(), "accord");
}

TEST(ColumnStoreTest, StatsCollectedAtBuildIndexes) {
  Table t = cqads::testing::MiniCarTable();
  ASSERT_NE(t.stats(), nullptr);
  const exec::TableStats& stats = *t.stats();
  EXPECT_EQ(stats.row_count, 13u);
  EXPECT_EQ(stats.columns[0].distinct_count, 7u);   // makes
  EXPECT_DOUBLE_EQ(stats.columns[3].min, 5500.0);   // price
  EXPECT_DOUBLE_EQ(stats.columns[3].max, 42000.0);
  EXPECT_TRUE(stats.columns[3].numeric);
  EXPECT_GT(stats.columns[9].element_postings, 13u);  // multi-element lists
}

TEST(ColumnStoreTest, StatsResetOnInsert) {
  Table t = cqads::testing::MiniCarTable();
  ASSERT_NE(t.stats(), nullptr);
  Record rec(10);
  rec[0] = Value::Text("kia");
  rec[1] = Value::Text("rio");
  ASSERT_TRUE(t.Insert(std::move(rec)).ok());
  EXPECT_EQ(t.stats(), nullptr);  // stale stats dropped with the indexes
  t.BuildIndexes();
  EXPECT_EQ(t.stats()->row_count, 14u);
}

TEST(ColumnStoreTest, TableMoveKeepsStoreUsable) {
  Table t = cqads::testing::MiniCarTable();
  Table moved = std::move(t);
  EXPECT_EQ(moved.num_rows(), 13u);
  EXPECT_EQ(moved.cell(0, 0).text(), "honda");
  EXPECT_EQ(moved.CellElements(0, 9).size(), 2u);
  EXPECT_NE(moved.RowText(0).find("power steering"), std::string::npos);
}

}  // namespace
}  // namespace cqads::db
