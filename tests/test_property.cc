// Property-based tests: randomized differential checks of the executor
// against a brute-force row-by-row reference, the cost-aware planner
// against the seed Type-rank executor across every datagen domain,
// robustness of the question pipeline under garbage input, and invariants
// of the similarity machinery.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cqads_engine.h"
#include "datagen/ads_generator.h"
#include "datagen/domain_spec.h"
#include "db/exec/planner.h"
#include "db/executor.h"
#include "test_fixtures.h"

namespace cqads {
namespace {

// ---------------------------------------------------- executor differential

class RandomExprGen {
 public:
  RandomExprGen(const db::Table* table, Rng* rng) : table_(table), rng_(rng) {}

  db::ExprPtr Generate(int depth) {
    if (depth <= 0 || rng_->Bernoulli(0.45)) {
      return db::Expr::MakePredicate(RandomPredicate());
    }
    double r = rng_->UniformReal(0, 1);
    if (r < 0.4) {
      return db::Expr::MakeAnd({Generate(depth - 1), Generate(depth - 1)});
    }
    if (r < 0.8) {
      return db::Expr::MakeOr({Generate(depth - 1), Generate(depth - 1)});
    }
    return db::Expr::MakeNot(Generate(depth - 1));
  }

 private:
  db::Predicate RandomPredicate() {
    const db::Schema& schema = table_->schema();
    db::Predicate p;
    p.attr = rng_->UniformIndex(schema.num_attributes());
    const db::Attribute& attr = schema.attribute(p.attr);
    if (attr.data_kind == db::DataKind::kNumeric) {
      auto range = table_->NumericRange(p.attr);
      double lo = range.ok() ? range.value().first : 0;
      double hi = range.ok() ? range.value().second : 1;
      static const db::CompareOp kOps[] = {
          db::CompareOp::kEq, db::CompareOp::kNe, db::CompareOp::kLt,
          db::CompareOp::kLe, db::CompareOp::kGt, db::CompareOp::kGe,
          db::CompareOp::kBetween};
      p.op = kOps[rng_->UniformIndex(7)];
      double a = rng_->UniformReal(lo, hi);
      double b = rng_->UniformReal(lo, hi);
      p.value = db::Value::Real(std::min(a, b));
      p.value_hi = db::Value::Real(std::max(a, b));
    } else {
      // Draw a value that exists (or occasionally a miss).
      const db::HashIndex* idx = table_->hash_index(p.attr);
      auto keys = idx->Keys();
      if (!keys.empty() && rng_->Bernoulli(0.9)) {
        p.value = db::Value::Text(keys[rng_->UniformIndex(keys.size())]);
      } else {
        p.value = db::Value::Text("nonexistent-value");
      }
      p.op = rng_->Bernoulli(0.8) ? db::CompareOp::kEq : db::CompareOp::kNe;
      p.allow_shorthand = rng_->Bernoulli(0.5);
    }
    return p;
  }

  const db::Table* table_;
  Rng* rng_;
};

class ExecutorDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorDifferentialTest, IndexedExecutionMatchesBruteForce) {
  Rng rng(1000 + GetParam());
  auto table_result = datagen::GenerateAds(
      *datagen::FindDomainSpec("cars"), 120, &rng);
  ASSERT_TRUE(table_result.ok());
  const db::Table& table = table_result.value();
  db::Executor exec(&table);
  RandomExprGen gen(&table, &rng);

  for (int trial = 0; trial < 50; ++trial) {
    db::Query q;
    q.where = gen.Generate(3);
    q.limit = table.num_rows();
    auto res = exec.Execute(q);
    ASSERT_TRUE(res.ok()) << res.status();
    // Brute force: every row checked individually.
    std::vector<db::RowId> expected;
    for (db::RowId r = 0; r < table.num_rows(); ++r) {
      if (exec.MatchesExpr(r, *q.where)) expected.push_back(r);
    }
    EXPECT_EQ(res.value().rows, expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorDifferentialTest,
                         ::testing::Values(0, 1, 2, 3, 4));

// ------------------------------------------------- planner differential

// The planner reorders conjunctions by estimated selectivity and swaps
// set-op representations by density; none of that may change answers. Pin
// planner-ordered execution to the seed §4.3 Type-rank order across every
// datagen domain and randomized expression trees, superlatives included.
class PlannerDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(PlannerDifferentialTest, PlannedExecutionMatchesSeedAcrossDomains) {
  for (const auto& spec : datagen::AllDomainSpecs()) {
    Rng rng(5000 + GetParam());
    auto table_result = datagen::GenerateAds(spec, 90, &rng);
    ASSERT_TRUE(table_result.ok()) << spec.schema.domain();
    const db::Table& table = table_result.value();
    db::Executor exec(&table);
    db::exec::Planner planner(&table);
    RandomExprGen gen(&table, &rng);

    for (int trial = 0; trial < 25; ++trial) {
      db::Query q;
      q.where = gen.Generate(3);
      q.limit = table.num_rows();
      if (rng.Bernoulli(0.3)) {
        const auto numeric = table.schema().NumericAttrs();
        if (!numeric.empty()) {
          q.superlative = db::Superlative{
              numeric[rng.UniformIndex(numeric.size())], rng.Bernoulli(0.5)};
          q.limit = 1 + rng.UniformIndex(10);
        }
      }
      auto seed = exec.Execute(q);
      auto planned = planner.Run(q);
      ASSERT_TRUE(seed.ok()) << seed.status();
      ASSERT_TRUE(planned.ok()) << planned.status();
      EXPECT_EQ(planned.value().rows, seed.value().rows)
          << spec.schema.domain() << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerDifferentialTest,
                         ::testing::Values(0, 1, 2));

TEST(PlannerDifferentialTest, EngineAnswersIdenticalWithPlannerOnAndOff) {
  db::Table table = cqads::testing::MiniCarTable();
  const char* questions[] = {
      "honda accord blue less than 15000 dollars",
      "cheapest 2 door",
      "red or blue toyota",
      "not manual honda under $9000",
      "2004 accord",
      "gold honda except automatic",
  };

  core::CqadsEngine planner_engine;
  ASSERT_TRUE(planner_engine.AddDomain(&table, qlog::TiMatrix()).ok());
  core::EngineOptions seed_options;
  seed_options.use_planner = false;
  core::CqadsEngine seed_engine(seed_options);
  ASSERT_TRUE(seed_engine.AddDomain(&table, qlog::TiMatrix()).ok());

  for (const char* q : questions) {
    auto with_planner = planner_engine.AskInDomain("cars", q);
    auto with_seed = seed_engine.AskInDomain("cars", q);
    ASSERT_TRUE(with_planner.ok()) << q;
    ASSERT_TRUE(with_seed.ok()) << q;
    EXPECT_EQ(core::CanonicalAskResultString(with_planner.value()),
              core::CanonicalAskResultString(with_seed.value()))
        << q;
  }
}

TEST(ExecutorPropertyTest, SuperlativeReturnsExtremeOfFilteredSet) {
  Rng rng(77);
  auto table_result =
      datagen::GenerateAds(*datagen::FindDomainSpec("cars"), 150, &rng);
  ASSERT_TRUE(table_result.ok());
  const db::Table& table = table_result.value();
  db::Executor exec(&table);
  RandomExprGen gen(&table, &rng);

  for (int trial = 0; trial < 30; ++trial) {
    db::Query q;
    q.where = gen.Generate(2);
    q.superlative = db::Superlative{3, rng.Bernoulli(0.5)};  // price
    q.limit = 1;
    auto res = exec.Execute(q);
    ASSERT_TRUE(res.ok());
    if (res.value().rows.empty()) continue;
    double top = table.cell(res.value().rows[0], 3).AsDouble();
    for (db::RowId r = 0; r < table.num_rows(); ++r) {
      if (!exec.MatchesExpr(r, *q.where)) continue;
      double v = table.cell(r, 3).AsDouble();
      if (q.superlative->ascending) {
        EXPECT_LE(top, v);
      } else {
        EXPECT_GE(top, v);
      }
    }
  }
}

// --------------------------------------------------------- pipeline fuzzing

class PipelineRobustnessTest : public ::testing::Test {
 protected:
  PipelineRobustnessTest() : table_(cqads::testing::MiniCarTable()) {
    EXPECT_TRUE(engine_.AddDomain(&table_, qlog::TiMatrix()).ok());
  }
  db::Table table_;
  core::CqadsEngine engine_;
};

TEST_F(PipelineRobustnessTest, RandomBytesNeverCrash) {
  Rng rng(31337);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    std::size_t len = rng.UniformIndex(60);
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(1, 127)));
    }
    auto result = engine_.AskInDomain("cars", garbage);
    ASSERT_TRUE(result.ok()) << "input: " << garbage;
  }
}

TEST_F(PipelineRobustnessTest, RandomWordSoupNeverCrashes) {
  Rng rng(424242);
  const char* words[] = {"honda",  "blue",   "less",  "than",   "2000",
                         "not",    "or",     "and",   "between", "cheapest",
                         "zzz",    "$5,000", "miles", "except", "4",
                         "door",   "price",  "no",    "accord", "20k"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string question;
    std::size_t n_words = 1 + rng.UniformIndex(12);
    for (std::size_t i = 0; i < n_words; ++i) {
      if (i > 0) question += " ";
      question += words[rng.UniformIndex(std::size(words))];
    }
    auto result = engine_.AskInDomain("cars", question);
    ASSERT_TRUE(result.ok()) << "input: " << question;
    // The cap invariant holds for any input.
    EXPECT_LE(result.value().answers.size(), 30u);
  }
}

TEST_F(PipelineRobustnessTest, VeryLongQuestionHandled) {
  std::string question;
  for (int i = 0; i < 500; ++i) question += "blue honda accord ";
  auto result = engine_.AskInDomain("cars", question);
  ASSERT_TRUE(result.ok());
}

TEST_F(PipelineRobustnessTest, AnswersAlwaysUniqueAndCapped) {
  Rng rng(9);
  const char* questions[] = {
      "honda accord blue less than 15000 dollars",
      "cheapest 2 door",
      "red or blue toyota",
      "not manual honda under $9000",
      "2004 accord",
  };
  for (const char* q : questions) {
    auto result = engine_.AskInDomain("cars", q);
    ASSERT_TRUE(result.ok());
    std::set<db::RowId> seen;
    for (const auto& a : result.value().answers) {
      EXPECT_TRUE(seen.insert(a.row).second) << q;
    }
    EXPECT_LE(result.value().answers.size(), 30u);
    // Exact answers always precede partial ones.
    bool saw_partial = false;
    for (const auto& a : result.value().answers) {
      if (!a.exact) saw_partial = true;
      if (saw_partial) {
        EXPECT_FALSE(a.exact) << q;
      }
    }
  }
}

// ------------------------------------------------------ similarity bounds

TEST(SimilarityPropertyTest, RankSimBoundedByUnitCount) {
  Rng rng(55);
  auto table_result =
      datagen::GenerateAds(*datagen::FindDomainSpec("cars"), 100, &rng);
  ASSERT_TRUE(table_result.ok());
  const db::Table& table = table_result.value();

  core::SimilarityContext ctx;
  ctx.attr_ranges = core::ComputeAttrRanges(table);

  core::MatchUnit unit;
  unit.kind = core::MatchUnit::Kind::kTypeIII;
  unit.attr = 3;
  core::Condition c;
  c.kind = core::Condition::Kind::kTypeIIIBound;
  c.attr = 3;
  c.op = db::CompareOp::kLt;
  c.lo = 9000;
  unit.conds = {c};
  std::vector<core::MatchUnit> units = {unit};

  for (db::RowId r = 0; r < table.num_rows(); ++r) {
    auto score = core::ScorePartialMatch(table, r, units, 0, ctx);
    EXPECT_GE(score.unit_sim, 0.0);
    EXPECT_LE(score.unit_sim, 1.0);
    EXPECT_GE(score.rank_sim, 0.0);
    EXPECT_LE(score.rank_sim, 1.0);  // N-1 + sim with N = 1
  }
}

}  // namespace
}  // namespace cqads
