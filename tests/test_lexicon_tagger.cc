#include <gtest/gtest.h>

#include "core/domain_lexicon.h"
#include "core/question_tagger.h"
#include "test_fixtures.h"
#include "text/tokenizer.h"

namespace cqads::core {
namespace {

class LexiconTest : public ::testing::Test {
 protected:
  LexiconTest() : table_(cqads::testing::MiniCarTable()) {
    auto lex = DomainLexicon::Build(&table_);
    EXPECT_TRUE(lex.ok()) << lex.status();
    lexicon_ = std::make_unique<DomainLexicon>(std::move(lex).value());
  }
  db::Table table_;
  std::unique_ptr<DomainLexicon> lexicon_;
};

TEST_F(LexiconTest, BuildRequiresIndexes) {
  db::Table fresh(cqads::testing::MiniCarSchema());
  EXPECT_FALSE(DomainLexicon::Build(&fresh).ok());
  EXPECT_FALSE(DomainLexicon::Build(nullptr).ok());
}

TEST_F(LexiconTest, ValuesInsertedWithTypes) {
  const auto* handles = lexicon_->trie().Find("honda");
  ASSERT_NE(handles, nullptr);
  const TaggedItem& item = lexicon_->entry((*handles)[0]);
  EXPECT_EQ(item.kind, TagKind::kTypeIValue);
  EXPECT_EQ(item.attr, 0u);
  EXPECT_EQ(item.value, "honda");

  const auto* blue = lexicon_->trie().Find("blue");
  ASSERT_NE(blue, nullptr);
  EXPECT_EQ(lexicon_->entry((*blue)[0]).kind, TagKind::kTypeIIValue);
}

TEST_F(LexiconTest, OperatorPhrasesInserted) {
  EXPECT_TRUE(lexicon_->trie().Contains("less than"));
  EXPECT_TRUE(lexicon_->trie().Contains("between"));
  EXPECT_TRUE(lexicon_->trie().Contains("cheapest"));
  EXPECT_TRUE(lexicon_->trie().Contains("not"));
}

TEST_F(LexiconTest, AttributeAliasesAndUnitsInserted) {
  const auto* price = lexicon_->trie().Find("price");
  ASSERT_NE(price, nullptr);
  EXPECT_EQ(lexicon_->entry((*price)[0]).kind, TagKind::kTypeIIIAttr);

  const auto* miles = lexicon_->trie().Find("miles");
  ASSERT_NE(miles, nullptr);
  const TaggedItem& item = lexicon_->entry((*miles)[0]);
  EXPECT_EQ(item.kind, TagKind::kUnit);
  EXPECT_EQ(item.attr, 4u);  // mileage
}

TEST_F(LexiconTest, RulesForAbsentAliasesSkipped) {
  // The car schema has no "salary": the salary superlative must be absent.
  EXPECT_FALSE(lexicon_->trie().Contains("highest paying"));
  // But price/year superlatives are present.
  EXPECT_TRUE(lexicon_->trie().Contains("newest"));
}

TEST_F(LexiconTest, PhraseMatchLongest) {
  auto tokens = text::Tokenize("4 wheel drive please");
  auto match = lexicon_->LongestPhraseMatch(tokens, 0);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->token_count, 3u);
  EXPECT_EQ(lexicon_->entry(match->handles[0]).value, "4 wheel drive");
}

TEST_F(LexiconTest, PhraseMatchSingleToken) {
  auto tokens = text::Tokenize("accord");
  auto match = lexicon_->LongestPhraseMatch(tokens, 0);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->token_count, 1u);
}

TEST_F(LexiconTest, PhraseMatchMissReturnsNullopt) {
  auto tokens = text::Tokenize("zebra stripes");
  EXPECT_FALSE(lexicon_->LongestPhraseMatch(tokens, 0).has_value());
  EXPECT_FALSE(lexicon_->LongestPhraseMatch(tokens, 5).has_value());
}

TEST_F(LexiconTest, FindShorthandResolvesValue) {
  auto item = lexicon_->FindShorthand("2dr");
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->value, "2 door");
  EXPECT_EQ(item->kind, TagKind::kTypeIIValue);
}

TEST_F(LexiconTest, FindShorthandRejectsLongerToken) {
  // "hondaaccord" is longer than any single value: missing-space case.
  EXPECT_FALSE(lexicon_->FindShorthand("hondaaccord").has_value());
}

TEST_F(LexiconTest, ValuesOfReturnsPool) {
  auto makes = lexicon_->ValuesOf(0);
  EXPECT_NE(std::find(makes.begin(), makes.end(), "honda"), makes.end());
  EXPECT_NE(std::find(makes.begin(), makes.end(), "bmw"), makes.end());
}

// -------------------------------------------------------------- tagging

class TaggerTest : public LexiconTest {
 protected:
  TaggerTest() : tagger_(lexicon_.get()) {}

  std::vector<TagKind> Kinds(const std::string& question) {
    std::vector<TagKind> out;
    for (const auto& item : tagger_.Tag(question).items) {
      out.push_back(item.kind);
    }
    return out;
  }

  QuestionTagger tagger_;
};

TEST_F(TaggerTest, PaperQ1Tagging) {
  // "2 door"/TII "red"/TII "BMW"/TI  (Example 2)
  auto result = tagger_.Tag("Do you have a 2 door red BMW?");
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.items[0].kind, TagKind::kTypeIIValue);
  EXPECT_EQ(result.items[0].value, "2 door");
  EXPECT_EQ(result.items[1].value, "red");
  EXPECT_EQ(result.items[2].kind, TagKind::kTypeIValue);
  EXPECT_EQ(result.items[2].value, "bmw");
}

TEST_F(TaggerTest, PaperQ2Tagging) {
  // "Cheapest"/TIII-CS "2dr"/TII "mazda"/TI "automatic"/TII
  auto result = tagger_.Tag("Cheapest 2dr mazda with automatic transmission");
  ASSERT_GE(result.items.size(), 4u);
  EXPECT_EQ(result.items[0].kind, TagKind::kSuperComplete);
  EXPECT_TRUE(result.items[0].ascending);
  EXPECT_EQ(result.items[1].kind, TagKind::kTypeIIValue);
  EXPECT_EQ(result.items[1].value, "2 door");  // shorthand resolved
  EXPECT_EQ(result.items[2].value, "mazda");
  EXPECT_EQ(result.items[3].value, "automatic");
  ASSERT_EQ(result.shorthands.size(), 1u);
}

TEST_F(TaggerTest, PaperQ3Tagging) {
  // "4 wheel drive"/TII "less than"/op "20k mi"/number+unit
  auto result = tagger_.Tag("I want a 4 wheel drive with less than 20k miles");
  ASSERT_EQ(result.items.size(), 4u);
  EXPECT_EQ(result.items[0].value, "4 wheel drive");
  EXPECT_EQ(result.items[1].kind, TagKind::kOpLess);
  EXPECT_EQ(result.items[2].kind, TagKind::kNumber);
  EXPECT_DOUBLE_EQ(result.items[2].number, 20000.0);
  EXPECT_EQ(result.items[3].kind, TagKind::kUnit);
  EXPECT_EQ(result.items[3].attr, 4u);
}

TEST_F(TaggerTest, MoneyFlagCarried) {
  auto result = tagger_.Tag("accord under $5,000");
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.items[1].kind, TagKind::kOpLess);
  EXPECT_TRUE(result.items[2].is_money);
  EXPECT_DOUBLE_EQ(result.items[2].number, 5000.0);
}

TEST_F(TaggerTest, MissingSpaceRepaired) {
  auto result = tagger_.Tag("hondaaccord less than 2000");
  ASSERT_EQ(result.segmentations.size(), 1u);
  ASSERT_GE(result.items.size(), 2u);
  EXPECT_EQ(result.items[0].value, "honda");
  EXPECT_EQ(result.items[1].value, "accord");
}

TEST_F(TaggerTest, MisspellingCorrected) {
  auto result = tagger_.Tag("honda accorr less than 2000");
  ASSERT_EQ(result.corrections.size(), 1u);
  EXPECT_EQ(result.items[1].value, "accord");
}

TEST_F(TaggerTest, NegationTagged) {
  auto kinds = Kinds("any car except a blue one");
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], TagKind::kNegation);
  EXPECT_EQ(kinds[1], TagKind::kTypeIIValue);
}

TEST_F(TaggerTest, NoMoreThanBeatsNegationPrefix) {
  // "no more than" is one phrase, not negation + "more than".
  auto result = tagger_.Tag("accord no more than 9000 dollars");
  ASSERT_GE(result.items.size(), 3u);
  EXPECT_EQ(result.items[1].kind, TagKind::kOpLess);
  EXPECT_EQ(result.items[1].op, db::CompareOp::kLe);
}

TEST_F(TaggerTest, BooleanOperatorsTagged) {
  auto kinds = Kinds("blue or red accord and automatic");
  EXPECT_EQ(kinds,
            (std::vector<TagKind>{TagKind::kTypeIIValue, TagKind::kOr,
                                  TagKind::kTypeIIValue, TagKind::kTypeIValue,
                                  TagKind::kAnd, TagKind::kTypeIIValue}));
}

TEST_F(TaggerTest, UnknownWordsDropped) {
  auto result = tagger_.Tag("gorgeous zippy accord");
  EXPECT_EQ(result.items.size(), 1u);
  EXPECT_GE(result.dropped.size(), 1u);
}

TEST_F(TaggerTest, EmptyQuestion) {
  auto result = tagger_.Tag("");
  EXPECT_TRUE(result.items.empty());
}

TEST_F(TaggerTest, PartialSuperlativeWithAttr) {
  auto result = tagger_.Tag("lowest mileage accord");
  // "lowest" (partial) + "mileage" (attr) combine later in the builder; the
  // tagger emits both items.
  ASSERT_GE(result.items.size(), 3u);
  EXPECT_EQ(result.items[0].kind, TagKind::kSuperPartial);
  EXPECT_TRUE(result.items[0].ascending);
  EXPECT_EQ(result.items[1].kind, TagKind::kTypeIIIAttr);
}

}  // namespace
}  // namespace cqads::core
