#include "trie/keyword_trie.h"

#include <gtest/gtest.h>

namespace cqads::trie {
namespace {

KeywordTrie MakeCarTrie() {
  KeywordTrie t;
  t.Insert("honda", 1);
  t.Insert("honda shadow", 2);  // shares the "honda" prefix
  t.Insert("accord", 3);
  t.Insert("less than", 4);
  t.Insert("blue", 5);
  t.Insert("2 door", 6);
  return t;
}

TEST(KeywordTrieTest, ContainsAndFind) {
  auto t = MakeCarTrie();
  EXPECT_TRUE(t.Contains("honda"));
  EXPECT_TRUE(t.Contains("less than"));
  EXPECT_FALSE(t.Contains("hond"));
  EXPECT_FALSE(t.Contains("hondas"));
  ASSERT_NE(t.Find("accord"), nullptr);
  EXPECT_EQ((*t.Find("accord"))[0], 3);
  EXPECT_EQ(t.Find("missing"), nullptr);
}

TEST(KeywordTrieTest, SizeCountsDistinctKeywords) {
  auto t = MakeCarTrie();
  EXPECT_EQ(t.size(), 6u);
  t.Insert("honda", 99);  // same keyword, new handle
  EXPECT_EQ(t.size(), 6u);
  ASSERT_NE(t.Find("honda"), nullptr);
  EXPECT_EQ(t.Find("honda")->size(), 2u);
}

TEST(KeywordTrieTest, DuplicateHandleIgnored) {
  KeywordTrie t;
  t.Insert("x", 1);
  t.Insert("x", 1);
  EXPECT_EQ(t.Find("x")->size(), 1u);
}

TEST(KeywordTrieTest, EmptyKeywordIgnored) {
  KeywordTrie t;
  t.Insert("", 1);
  EXPECT_EQ(t.size(), 0u);
}

TEST(KeywordTrieTest, CursorWalk) {
  auto t = MakeCarTrie();
  auto c = t.Walk(t.Root(), "honda");
  ASSERT_TRUE(c.valid());
  EXPECT_TRUE(t.IsTerminal(c));
  EXPECT_TRUE(t.HasChildren(c));  // "honda shadow" continues
  auto c2 = t.Step(c, ' ');
  ASSERT_TRUE(c2.valid());
  EXPECT_FALSE(t.IsTerminal(c2));
  auto c3 = t.Walk(c2, "shadow");
  ASSERT_TRUE(c3.valid());
  EXPECT_TRUE(t.IsTerminal(c3));
  EXPECT_EQ(t.Handles(c3)[0], 2);
}

TEST(KeywordTrieTest, InvalidCursorStaysInvalid) {
  auto t = MakeCarTrie();
  auto c = t.Step(t.Root(), 'z');
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(t.Step(c, 'a').valid());
  EXPECT_FALSE(t.IsTerminal(c));
  EXPECT_TRUE(t.Handles(c).empty());
}

TEST(KeywordTrieTest, CompletionsFromPrefix) {
  auto t = MakeCarTrie();
  auto c = t.Walk(t.Root(), "hon");
  auto completions = t.Completions(c, "hon", 10);
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].first, "honda");
  EXPECT_EQ(completions[1].first, "honda shadow");
}

TEST(KeywordTrieTest, CompletionsRespectLimit) {
  auto t = MakeCarTrie();
  auto completions = t.Completions(t.Root(), "", 3);
  EXPECT_EQ(completions.size(), 3u);
}

TEST(KeywordTrieTest, CompletionsLexicographic) {
  KeywordTrie t;
  t.Insert("bb", 1);
  t.Insert("ba", 2);
  t.Insert("a", 3);
  auto completions = t.Completions(t.Root(), "", 10);
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].first, "a");
  EXPECT_EQ(completions[1].first, "ba");
  EXPECT_EQ(completions[2].first, "bb");
}

TEST(KeywordTrieTest, LongestMatchLength) {
  auto t = MakeCarTrie();
  EXPECT_EQ(t.LongestMatchLength("hondaaccord", 0), 5u);
  EXPECT_EQ(t.LongestMatchLength("hondaaccord", 5), 6u);
  EXPECT_EQ(t.LongestMatchLength("xhonda", 0), 0u);
  EXPECT_EQ(t.LongestMatchLength("honda shadow", 0), 12u);  // longest wins
}

TEST(KeywordTrieTest, AllMatchLengthsAscending) {
  auto t = MakeCarTrie();
  auto lengths = t.AllMatchLengths("honda shadow", 0);
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_EQ(lengths[0], 5u);
  EXPECT_EQ(lengths[1], 12u);
}

TEST(KeywordTrieTest, NodeCountGrowsWithSharedPrefixes) {
  KeywordTrie t;
  EXPECT_EQ(t.node_count(), 1u);  // root
  t.Insert("ab", 1);
  EXPECT_EQ(t.node_count(), 3u);
  t.Insert("ac", 2);  // shares 'a'
  EXPECT_EQ(t.node_count(), 4u);
}

TEST(KeywordTrieTest, LookupCostIsLengthBounded) {
  // §4.1.3: O(m) lookups. Indirectly verified: walking m chars visits m
  // cursor steps regardless of trie size.
  KeywordTrie t;
  for (int i = 0; i < 1000; ++i) t.Insert("key" + std::to_string(i), i);
  auto c = t.Root();
  std::string needle = "key999";
  for (char ch : needle) {
    c = t.Step(c, ch);
    ASSERT_TRUE(c.valid());
  }
  EXPECT_TRUE(t.IsTerminal(c));
}

TEST(KeywordTrieTest, MoveSemantics) {
  auto t = MakeCarTrie();
  KeywordTrie moved = std::move(t);
  EXPECT_TRUE(moved.Contains("honda"));
}

}  // namespace
}  // namespace cqads::trie
