#include "core/boolean_assembler.h"

#include <gtest/gtest.h>

#include "core/question_tagger.h"
#include "db/executor.h"
#include "test_fixtures.h"

namespace cqads::core {
namespace {

class AssemblerTest : public ::testing::Test {
 protected:
  AssemblerTest() : table_(cqads::testing::MiniCarTable()) {
    auto lex = DomainLexicon::Build(&table_);
    lexicon_ = std::make_unique<DomainLexicon>(std::move(lex).value());
    tagger_ = std::make_unique<QuestionTagger>(lexicon_.get());
    resolver_ = [this](double value, bool is_money) {
      std::vector<std::size_t> out;
      for (std::size_t a : table_.schema().NumericAttrs()) {
        if (is_money && !IsMoneyAttribute(table_.schema().attribute(a))) {
          continue;
        }
        auto range = table_.NumericRange(a);
        if (range.ok() && value >= range.value().first &&
            value <= range.value().second) {
          out.push_back(a);
        }
      }
      return out;
    };
  }

  AssembledQuery Assemble(const std::string& question) {
    auto built =
        BuildConditions(tagger_->Tag(question).items, table_.schema());
    auto result = AssembleQuery(built, table_.schema(), resolver_);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? std::move(result).value() : AssembledQuery{};
  }

  db::Table table_;
  std::unique_ptr<DomainLexicon> lexicon_;
  std::unique_ptr<QuestionTagger> tagger_;
  AmbiguousResolver resolver_;
};

TEST_F(AssemblerTest, SimpleConjunction) {
  auto q = Assemble("blue honda accord");
  EXPECT_EQ(q.interpretation,
            "(make = 'honda' AND model = 'accord') AND color = 'blue'");
  ASSERT_EQ(q.units.size(), 2u);
  EXPECT_EQ(q.units[0].kind, MatchUnit::Kind::kIdentity);
  EXPECT_EQ(q.units[0].value, "honda accord");
  EXPECT_EQ(q.units[1].kind, MatchUnit::Kind::kTypeII);
  EXPECT_EQ(q.units[1].value, "blue");
}

TEST_F(AssemblerTest, Example6Q1RangeMerging) {
  // "below $7000 and not less than $2000" -> 2000 <= price < 7000 (rules
  // 1a + 1c).
  auto q = Assemble("car priced below $7000 and not less than $2000");
  EXPECT_EQ(q.interpretation, "price >= 2000 AND price < 7000");
  EXPECT_FALSE(q.contradiction);
  ASSERT_EQ(q.units.size(), 1u);
  EXPECT_EQ(q.units[0].kind, MatchUnit::Kind::kTypeIII);
}

TEST_F(AssemblerTest, Rule1bRepeatedUpperBoundsKeepLower) {
  auto q = Assemble("accord price less than 9000 price less than 12000");
  EXPECT_NE(q.interpretation.find("price < 9000"), std::string::npos);
  EXPECT_EQ(q.interpretation.find("12000"), std::string::npos);
}

TEST_F(AssemblerTest, Rule1bRepeatedLowerBoundsKeepHigher) {
  auto q = Assemble("accord price more than 3000 price above 5000");
  EXPECT_NE(q.interpretation.find("price > 5000"), std::string::npos);
  EXPECT_EQ(q.interpretation.find("3000"), std::string::npos);
}

TEST_F(AssemblerTest, Rule1cContradictionDetected) {
  // Non-overlapping bounds: "search retrieved no results".
  auto q = Assemble("accord price below 2000 and price above 7000");
  EXPECT_TRUE(q.contradiction);
  EXPECT_EQ(q.interpretation, "search retrieved no results");
}

TEST_F(AssemblerTest, Rule2aMutuallyExclusiveValuesOred) {
  // Q3-style: "black silver cars" -> black OR silver.
  auto q = Assemble("black silver honda");
  EXPECT_EQ(q.interpretation,
            "make = 'honda' AND (color = 'black' OR color = 'silver')");
}

TEST_F(AssemblerTest, Rule2aNegatedValuesAnded) {
  // Q2 of Example 6: negated Type II values AND together.
  auto q = Assemble("silver not manual not 2 door honda accord");
  EXPECT_NE(q.interpretation.find("color = 'silver'"), std::string::npos);
  EXPECT_NE(q.interpretation.find("NOT (transmission = 'manual')"),
            std::string::npos);
  EXPECT_NE(q.interpretation.find("NOT (doors = '2 door')"),
            std::string::npos);
}

TEST_F(AssemblerTest, Example6Q2FullInterpretation) {
  // "I want a Toyota Corolla or a silver not manual not 2-dr Honda Accord"
  auto q = Assemble(
      "i want a toyota corolla or a silver not manual not 2 door honda "
      "accord");
  ASSERT_TRUE(q.where != nullptr);
  EXPECT_EQ(q.where->kind(), db::Expr::Kind::kOr);
  ASSERT_EQ(q.where->children().size(), 2u);
  // Segment 1: toyota corolla. Segment 2: descriptors + honda accord.
  std::string interp = q.interpretation;
  EXPECT_NE(interp.find("make = 'toyota' AND model = 'corolla'"),
            std::string::npos);
  EXPECT_NE(interp.find("make = 'honda' AND model = 'accord'"),
            std::string::npos);
  EXPECT_NE(interp.find(" OR "), std::string::npos);
  // Units are withheld for multi-segment questions.
  EXPECT_TRUE(q.units.empty());
}

TEST_F(AssemblerTest, ImplicitMultiIdentitySplitsWithoutOr) {
  // Mutually-exclusive Type I values with no OR: rule 4 ORs segments.
  auto q = Assemble("toyota corolla honda accord");
  ASSERT_TRUE(q.where != nullptr);
  EXPECT_EQ(q.where->kind(), db::Expr::Kind::kOr);
}

TEST_F(AssemblerTest, Q8TrailingDescriptorsDistribute) {
  // "Focus, Corolla, or Civic. Show only black and silver cars" ->
  // (focus OR corolla OR civic) AND (black OR silver): the same-attribute
  // run collapses into one ORed identity unit, and the trailing colors OR
  // by mutual exclusion.
  auto q = Assemble("focus corolla or civic show only black and silver");
  ASSERT_TRUE(q.where != nullptr);
  EXPECT_EQ(q.where->kind(), db::Expr::Kind::kAnd);
  std::string interp = q.interpretation;
  EXPECT_NE(interp.find("model = 'focus'"), std::string::npos);
  EXPECT_NE(interp.find("model = 'corolla'"), std::string::npos);
  EXPECT_NE(interp.find("model = 'civic'"), std::string::npos);
  EXPECT_NE(interp.find("color = 'black' OR color = 'silver'"),
            std::string::npos);
}

TEST_F(AssemblerTest, Q10NegationStaysInItsSegment) {
  // "black mustang with gps exclude 2 wheel drive, or a green cherokee
  // without gps": the exclusion binds to the first segment only.
  auto q = Assemble(
      "black mustang with gps exclude 2 wheel drive or a green cherokee "
      "without gps");
  ASSERT_TRUE(q.where != nullptr);
  EXPECT_EQ(q.where->kind(), db::Expr::Kind::kOr);
  ASSERT_EQ(q.where->children().size(), 2u);
  std::string first =
      InterpretationString(table_.schema(), q.where->children()[0]);
  std::string second =
      InterpretationString(table_.schema(), q.where->children()[1]);
  EXPECT_NE(first.find("mustang"), std::string::npos);
  EXPECT_NE(first.find("NOT (drivetrain = '2 wheel drive')"),
            std::string::npos);
  EXPECT_NE(second.find("cherokee"), std::string::npos);
  EXPECT_NE(second.find("NOT (features = 'gps')"), std::string::npos);
  EXPECT_EQ(second.find("drivetrain"), std::string::npos);
}

TEST_F(AssemblerTest, FeatureValuesAreNotMutuallyExclusive) {
  // Feature-list values AND together (a car can have gps AND sunroof).
  auto q = Assemble("accord with gps sunroof");
  EXPECT_NE(q.interpretation.find("features = 'gps' AND features = 'sunroof'"),
            std::string::npos);
}

TEST_F(AssemblerTest, AmbiguousNumberExpandsToCandidates) {
  // "honda accord 16000": both the price range (5500..42000) and mileage
  // range (15000..150000) of the fixture contain 16000; year does not.
  auto q = Assemble("honda accord 16000");
  ASSERT_EQ(q.units.size(), 2u);
  EXPECT_EQ(q.units[1].kind, MatchUnit::Kind::kAmbiguous);
  std::string interp = q.interpretation;
  EXPECT_EQ(interp.find("year"), std::string::npos);
  EXPECT_NE(interp.find("price = 16000"), std::string::npos);
  EXPECT_NE(interp.find("mileage = 16000"), std::string::npos);
  EXPECT_NE(interp.find(" OR "), std::string::npos);
}

TEST_F(AssemblerTest, AmbiguousNumberExcludesOutOfRangeAttrs) {
  // Example 3's rule with fixture ranges: 2005 falls only in the year
  // range, so the bare number binds to year alone.
  auto q = Assemble("honda accord 2005");
  std::string interp = q.interpretation;
  EXPECT_NE(interp.find("year = 2005"), std::string::npos);
  EXPECT_EQ(interp.find("price"), std::string::npos);
  EXPECT_EQ(interp.find("mileage"), std::string::npos);
}

TEST_F(AssemblerTest, AmbiguousNumberNoCandidatesIsContradiction) {
  // 999999 fits no Type III range: §4.2.2 excludes every record.
  auto q = Assemble("honda accord 999999");
  EXPECT_TRUE(q.contradiction);
}

TEST_F(AssemblerTest, SuperlativeExtractedFromConditions) {
  auto q = Assemble("cheapest honda");
  ASSERT_TRUE(q.superlative.has_value());
  EXPECT_EQ(q.superlative->attr, 3u);
  EXPECT_TRUE(q.superlative->ascending);
  EXPECT_EQ(q.interpretation, "make = 'honda'");
}

TEST_F(AssemblerTest, NegatedTypeIGoesToFixed) {
  auto q = Assemble("not honda blue");
  EXPECT_NE(q.interpretation.find("NOT (make = 'honda')"),
            std::string::npos);
  ASSERT_EQ(q.units.size(), 1u);  // only "blue" is droppable
  EXPECT_EQ(q.fixed.size(), 1u);
}

TEST_F(AssemblerTest, EmptyQuestionYieldsNullWhere) {
  auto q = Assemble("");
  EXPECT_EQ(q.where, nullptr);
  EXPECT_EQ(q.interpretation, "");
}

TEST_F(AssemblerTest, NumericEqualityWithAttrName) {
  auto q = Assemble("accord year equal 2004");
  EXPECT_NE(q.interpretation.find("year = 2004"), std::string::npos);
}

// ---------------------------------------------------------------- extension:
// precedence-based explicit evaluator (§6 future work #1)

class PrecedenceTest : public AssemblerTest {
 protected:
  AssembledQuery AssemblePrec(const std::string& question) {
    auto built =
        BuildConditions(tagger_->Tag(question).items, table_.schema());
    auto result =
        AssembleExplicitPrecedence(built, table_.schema(), resolver_);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? std::move(result).value() : AssembledQuery{};
  }
};

TEST_F(PrecedenceTest, AndBindsTighterThanOr) {
  // "corolla or blue accord" -> corolla OR (blue AND accord).
  auto q = AssemblePrec("corolla or blue accord");
  ASSERT_TRUE(q.where != nullptr);
  ASSERT_EQ(q.where->kind(), db::Expr::Kind::kOr);
  ASSERT_EQ(q.where->children().size(), 2u);
  EXPECT_EQ(q.where->children()[1]->kind(), db::Expr::Kind::kAnd);
}

TEST_F(PrecedenceTest, LiteralReadingOfMutexDiffersFromRules) {
  // The implicit rules OR mutually-exclusive colors; the literal reading
  // conjoins silver with honda and leaves black alone.
  auto rules = Assemble("black or silver honda");
  auto literal = AssemblePrec("black or silver honda");
  EXPECT_NE(rules.interpretation, literal.interpretation);
  EXPECT_NE(literal.interpretation.find("color = 'black' OR"),
            std::string::npos);
}

TEST_F(PrecedenceTest, PlainConjunctionMatchesRules) {
  auto rules = Assemble("blue automatic accord");
  auto literal = AssemblePrec("blue automatic accord");
  // Same leaves; possibly different grouping. Compare via execution.
  db::Executor exec(&table_);
  db::ExecStats stats;
  EXPECT_EQ(exec.EvalExpr(*rules.where, &stats),
            exec.EvalExpr(*literal.where, &stats));
}

TEST_F(PrecedenceTest, SuperlativeStillExtracted) {
  auto q = AssemblePrec("cheapest honda or toyota");
  ASSERT_TRUE(q.superlative.has_value());
  EXPECT_EQ(q.superlative->attr, 3u);
}

TEST_F(PrecedenceTest, EmptyQuestion) {
  auto q = AssemblePrec("");
  EXPECT_EQ(q.where, nullptr);
}

TEST_F(PrecedenceTest, ContradictionViaAmbiguousNumber) {
  auto q = AssemblePrec("honda 999999");
  EXPECT_TRUE(q.contradiction);
}

}  // namespace
}  // namespace cqads::core
