#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace cqads {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, WeightedIndexRespectsZeroWeight) {
  Rng rng(5);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.WeightedIndex(w), 1u);
  }
}

TEST(RngTest, WeightedIndexRoughProportions) {
  Rng rng(5);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.WeightedIndex(w) == 1) ++ones;
  }
  EXPECT_NEAR(ones / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkDecorrelatesFromParentDraws) {
  Rng a(42);
  Rng child = a.Fork();
  // Child and parent should produce different streams.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.UniformInt(0, 1 << 30) != child.UniformInt(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

}  // namespace
}  // namespace cqads
