// End-to-end tests of the network serving front-end: byte-parity with
// in-process Ask over Unix and TCP sockets, deadline propagation through
// the socket queue, admission-control shedding visible on the wire,
// malformed-payload / oversized-frame / mid-response-disconnect failure
// containment, and the /statsz telemetry dump.
#include "serve/net/net_server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/json.h"
#include "common/socket_io.h"
#include "core/ask_types.h"
#include "eval/experiments.h"
#include "serve/net/net_client.h"

namespace cqads::serve::net {
namespace {

class NetServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 31337;
    options.ads_per_domain = 120;
    options.sessions_per_domain = 300;
    options.corpus_docs_per_domain = 40;
    options.domains = {"cars", "jewellery"};
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();

    auto generated = eval::GenerateSurveyQuestions(*world_, 25, 25, 555);
    for (const auto& [domain, qs] : generated) {
      for (const auto& q : qs) questions_->push_back(q.text);
    }
    ASSERT_GE(questions_->size(), 50u);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    questions_->clear();
  }

  void TearDown() override { FailPoints::DisarmAll(); }

  /// A per-test unix socket path (kept short: sockaddr_un caps ~100 bytes).
  static std::string SocketPath() {
    static std::atomic<int> counter{0};
    return "/tmp/cqads_net_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
  }

  static Result<std::unique_ptr<NetServer>> StartServer(
      NetServer::Options options) {
    return NetServer::Start(&world_->engine(), std::move(options));
  }

  static Request MakeAsk(std::uint64_t id, const std::string& question,
                         double budget_ms = 0.0) {
    Request request;
    request.id = id;
    request.method = "ask";
    request.question = question;
    request.budget_ms = budget_ms;
    return request;
  }

  /// Asserts one networked ask matches the in-process engine byte for byte
  /// (canonical string on success, status code on failure).
  static void ExpectParity(NetClient& client, std::uint64_t id,
                           const std::string& question) {
    auto response = client.Call(MakeAsk(id, question));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response.value().id, id);
    auto expected = world_->engine().Ask(question);
    if (expected.ok()) {
      EXPECT_EQ(response.value().status, "ok") << response.value().error;
      EXPECT_EQ(response.value().canonical,
                core::CanonicalAskResultString(expected.value()))
          << "question: " << question;
    } else {
      EXPECT_EQ(response.value().status,
                WireStatusName(expected.status().code()))
          << "question: " << question;
    }
  }

  static datagen::World* world_;
  static std::vector<std::string>* questions_;
};

datagen::World* NetServeTest::world_ = nullptr;
std::vector<std::string>* NetServeTest::questions_ =
    new std::vector<std::string>;

TEST_F(NetServeTest, UnixSocketParityWithInProcessAsk) {
  NetServer::Options options;
  options.unix_path = SocketPath();
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();

  auto client = NetClient::ConnectUnix(server.value()->unix_path());
  ASSERT_TRUE(client.ok()) << client.status();
  std::uint64_t id = 1;
  for (const auto& q : *questions_) {
    ExpectParity(client.value(), id++, q);
  }

  const auto net = server.value()->net_stats();
  EXPECT_EQ(net.accepted, 1u);
  EXPECT_EQ(net.frames_in, questions_->size());
  EXPECT_EQ(net.frames_out, questions_->size());
  EXPECT_EQ(net.protocol_errors, 0u);
  EXPECT_EQ(net.bad_requests, 0u);
}

TEST_F(NetServeTest, TcpParityAndEphemeralPortResolution) {
  NetServer::Options options;
  options.tcp_port = 0;  // kernel-assigned
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_GT(server.value()->tcp_port(), 0);

  auto client = NetClient::ConnectTcp("127.0.0.1", server.value()->tcp_port());
  ASSERT_TRUE(client.ok()) << client.status();
  std::uint64_t id = 1;
  for (std::size_t i = 0; i < questions_->size() && i < 12; ++i) {
    ExpectParity(client.value(), id++, (*questions_)[i]);
  }
}

TEST_F(NetServeTest, AskInDomainMatchesInProcess) {
  NetServer::Options options;
  options.unix_path = SocketPath();
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = NetClient::ConnectUnix(server.value()->unix_path());
  ASSERT_TRUE(client.ok()) << client.status();

  for (const std::string domain : {"cars", "jewellery"}) {
    for (std::size_t i = 0; i < 6; ++i) {
      Request request;
      request.id = i + 1;
      request.method = "ask_in_domain";
      request.domain = domain;
      request.question = (*questions_)[i];
      auto response = client.value().Call(request);
      ASSERT_TRUE(response.ok()) << response.status();
      auto expected = world_->engine().AskInDomain(domain, (*questions_)[i]);
      if (expected.ok()) {
        EXPECT_EQ(response.value().status, "ok") << response.value().error;
        EXPECT_EQ(response.value().domain, domain);
        EXPECT_EQ(response.value().canonical,
                  core::CanonicalAskResultString(expected.value()));
      } else {
        EXPECT_EQ(response.value().status,
                  WireStatusName(expected.status().code()));
      }
    }
  }
}

TEST_F(NetServeTest, PingAndStatszServeTelemetry) {
  NetServer::Options options;
  options.unix_path = SocketPath();
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = NetClient::ConnectUnix(server.value()->unix_path());
  ASSERT_TRUE(client.ok()) << client.status();

  Request ping;
  ping.id = 7;
  ping.method = "ping";
  auto pong = client.value().Call(ping);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong.value().id, 7u);
  EXPECT_EQ(pong.value().status, "ok");

  // Answer a couple of questions so the counters move.
  for (std::size_t i = 0; i < 4; ++i) {
    auto r = client.value().Call(MakeAsk(100 + i, (*questions_)[i]));
    ASSERT_TRUE(r.ok()) << r.status();
  }

  Request statsz;
  statsz.id = 8;
  statsz.method = "statsz";
  auto response = client.value().Call(statsz);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response.value().status, "ok");
  auto doc = JsonValue::Parse(response.value().stats_json);
  ASSERT_TRUE(doc.ok()) << doc.status() << " from "
                        << response.value().stats_json;
  const JsonValue& stats = doc.value();
  // Serving outcomes + queue-age telemetry from the ConcurrentServer...
  EXPECT_GE(stats.GetNumber("answered", -1.0), 4.0);
  for (const char* key :
       {"degraded", "deadline_exceeded", "shed", "expired_in_queue", "errors",
        "dequeued", "queue_depth", "max_queue_age_micros",
        "mean_queue_age_micros", "cache_hits", "cache_misses", "num_workers",
        "max_queue"}) {
    ASSERT_NE(stats.Find(key), nullptr) << "missing field: " << key;
    EXPECT_GE(stats.GetNumber(key, -1.0), 0.0) << key;
  }
  // ...plus the wire-level counters nested under "net".
  const JsonValue* net = stats.Find("net");
  ASSERT_NE(net, nullptr);
  EXPECT_GE(net->GetNumber("frames_in", -1.0), 5.0);
  EXPECT_EQ(net->GetNumber("active_connections", -1.0), 1.0);
}

TEST_F(NetServeTest, NegativeBudgetExpiresDeterministicallyInQueue) {
  // budget_ms < 0 means "deadline already passed when the frame arrived":
  // the expired-in-queue drop in AskAsyncInDomain must fire with certainty,
  // no sleeps or clock races involved.
  NetServer::Options options;
  options.unix_path = SocketPath();
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = NetClient::ConnectUnix(server.value()->unix_path());
  ASSERT_TRUE(client.ok()) << client.status();

  for (int i = 0; i < 3; ++i) {
    auto response =
        client.value().Call(MakeAsk(i + 1, (*questions_)[0], /*budget=*/-1.0));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response.value().status, "deadline_exceeded");
  }
  // The same question without a budget still answers — the expiry above was
  // the request's deadline, not server state.
  auto response = client.value().Call(MakeAsk(9, (*questions_)[0]));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value().status, "ok");
  EXPECT_GE(server.value()->stats().expired_in_queue, 3u);
}

TEST_F(NetServeTest, MalformedJsonAnswersErrorAndKeepsConnectionOpen) {
  NetServer::Options options;
  options.unix_path = SocketPath();
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();

  // Drive the socket by hand: NetClient only emits well-formed requests.
  auto fd = cqads::net::UnixConnect(server.value()->unix_path());
  ASSERT_TRUE(fd.ok()) << fd.status();
  std::string wire;
  AppendFrame("this is not json", &wire);
  AppendFrame("{\"id\":3}", &wire);  // valid JSON, missing method
  ASSERT_TRUE(cqads::net::WriteFull(fd.value().get(), wire.data(), wire.size())
                  .ok());

  FrameDecoder decoder;
  std::vector<Response> responses;
  while (responses.size() < 2) {
    char buf[512];
    auto got = cqads::net::ReadFull(fd.value().get(), buf, 1);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(got.value()) << "server closed on malformed payload";
    decoder.Feed(buf, 1);
    std::string payload;
    while (decoder.Pop(&payload) == FrameDecoder::Next::kFrame) {
      auto response = DecodeResponse(payload);
      ASSERT_TRUE(response.ok()) << response.status();
      responses.push_back(std::move(response).value());
    }
  }
  for (const auto& response : responses) {
    EXPECT_EQ(response.status, "invalid_argument");
    EXPECT_FALSE(response.error.empty());
  }

  // The framing stayed intact, so the connection still serves real asks.
  std::string ask_wire;
  AppendFrame(EncodeRequest(MakeAsk(4, (*questions_)[0])), &ask_wire);
  ASSERT_TRUE(cqads::net::WriteFull(fd.value().get(), ask_wire.data(),
                                    ask_wire.size())
                  .ok());
  char header[4];
  auto got = cqads::net::ReadFull(fd.value().get(), header, 4);
  ASSERT_TRUE(got.ok() && got.value());
  EXPECT_EQ(server.value()->net_stats().bad_requests, 2u);
  EXPECT_EQ(server.value()->net_stats().protocol_errors, 0u);
}

TEST_F(NetServeTest, OversizedFrameClosesConnectionButServerSurvives) {
  NetServer::Options options;
  options.unix_path = SocketPath();
  options.max_frame_bytes = 1024;
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();

  auto fd = cqads::net::UnixConnect(server.value()->unix_path());
  ASSERT_TRUE(fd.ok()) << fd.status();
  std::string wire;
  AppendFrame(std::string(2000, 'x'), &wire);
  ASSERT_TRUE(cqads::net::WriteFull(fd.value().get(), wire.data(), wire.size())
                  .ok());
  // An unresynchronizable violation: the server closes; we observe EOF.
  char buf[16];
  auto got = cqads::net::ReadFull(fd.value().get(), buf, sizeof(buf));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_FALSE(got.value()) << "expected EOF after oversized frame";

  // A fresh connection (with legal frames) still works.
  auto client = NetClient::ConnectUnix(server.value()->unix_path());
  ASSERT_TRUE(client.ok()) << client.status();
  auto response = client.value().Call(MakeAsk(1, (*questions_)[0]));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value().status, "ok");
  EXPECT_GE(server.value()->net_stats().protocol_errors, 1u);
}

TEST_F(NetServeTest, ClientDisconnectMidResponseIsContained) {
  NetServer::Options options;
  options.unix_path = SocketPath();
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();

  {
    // Pipeline a burst of asks and vanish before reading any response:
    // completions land on a closed (or closing) connection and must be
    // dropped, not crash or block the pool.
    auto client = NetClient::ConnectUnix(server.value()->unix_path());
    ASSERT_TRUE(client.ok()) << client.status();
    for (std::size_t i = 0; i < 16; ++i) {
      ASSERT_TRUE(client.value().Send(MakeAsk(i + 1, (*questions_)[i])).ok());
    }
    client.value().Close();
  }

  // The server keeps serving new connections with full parity.
  auto client = NetClient::ConnectUnix(server.value()->unix_path());
  ASSERT_TRUE(client.ok()) << client.status();
  for (std::size_t i = 0; i < 8; ++i) {
    ExpectParity(client.value(), 100 + i, (*questions_)[i]);
  }
}

TEST_F(NetServeTest, UnknownMethodAnswersInvalidArgument) {
  NetServer::Options options;
  options.unix_path = SocketPath();
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();
  auto client = NetClient::ConnectUnix(server.value()->unix_path());
  ASSERT_TRUE(client.ok()) << client.status();

  Request request;
  request.id = 5;
  request.method = "drop_all_tables";
  auto response = client.value().Call(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value().id, 5u);
  EXPECT_EQ(response.value().status, "invalid_argument");

  // An ask with no question is rejected before touching the engine.
  Request empty;
  empty.id = 6;
  empty.method = "ask";
  auto rejected = client.value().Call(empty);
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_EQ(rejected.value().status, "invalid_argument");
}

TEST_F(NetServeTest, ConcurrentClientsKeepByteParity) {
  NetServer::Options options;
  options.unix_path = SocketPath();
  options.serve.num_workers = 4;
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();

  // Precompute expectations once (the engine is const-shared underneath).
  std::vector<std::string> expected;
  for (const auto& q : *questions_) {
    auto r = world_->engine().Ask(q);
    expected.push_back(r.ok() ? core::CanonicalAskResultString(r.value())
                              : std::string("status:") +
                                    WireStatusName(r.status().code()));
  }

  constexpr int kClients = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = NetClient::ConnectUnix(server.value()->unix_path());
      if (!client.ok()) {
        mismatches.fetch_add(1000);
        return;
      }
      // Each client walks the questions at a different phase so the cache
      // and pool see genuinely interleaved traffic.
      for (std::size_t i = 0; i < questions_->size(); ++i) {
        const std::size_t at = (i + t * 13) % questions_->size();
        auto response = client.value().Call(MakeAsk(i + 1, (*questions_)[at]));
        if (!response.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const std::string got =
            response.value().ok()
                ? response.value().canonical
                : std::string("status:") + response.value().status;
        if (got != expected[at]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(NetServeTest, AdmissionControlShedsOnTheWire) {
  // One worker, tiny queue, and a failpoint-injected 20ms stall per task:
  // a pipelined burst must overrun the queue and come back "overloaded"
  // through the socket, exercising the whole shed path end to end.
  NetServer::Options options;
  options.unix_path = SocketPath();
  options.serve.num_workers = 1;
  options.serve.max_queue = 2;
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();

  FailPoints::Config config;
  config.delay = std::chrono::milliseconds(20);
  FailPoints::Arm("worker_pool.task", config);

  auto client = NetClient::ConnectUnix(server.value()->unix_path());
  ASSERT_TRUE(client.ok()) << client.status();
  constexpr std::size_t kBurst = 24;
  for (std::size_t i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(
        client.value().Send(MakeAsk(i + 1, (*questions_)[i % 8])).ok());
  }
  std::size_t answered = 0, shed = 0, other = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    auto response = client.value().Receive();
    ASSERT_TRUE(response.ok()) << response.status();
    if (response.value().status == "ok") {
      ++answered;
    } else if (response.value().status == "overloaded") {
      ++shed;
    } else {
      ++other;
    }
  }
  FailPoints::DisarmAll();
  EXPECT_GT(shed, 0u) << "answered=" << answered << " other=" << other;
  EXPECT_GT(answered, 0u);
  EXPECT_EQ(other, 0u);
  EXPECT_EQ(server.value()->stats().shed, shed);

  // After the burst drains and the failpoint is gone, service is normal.
  auto response = client.value().Call(MakeAsk(999, (*questions_)[0]));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value().status, "ok");
}

TEST_F(NetServeTest, StopWithInFlightRequestsDoesNotHang) {
  NetServer::Options options;
  options.unix_path = SocketPath();
  options.serve.num_workers = 2;
  auto server = StartServer(options);
  ASSERT_TRUE(server.ok()) << server.status();

  auto client = NetClient::ConnectUnix(server.value()->unix_path());
  ASSERT_TRUE(client.ok()) << client.status();
  for (std::size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(client.value().Send(MakeAsk(i + 1, (*questions_)[i])).ok());
  }
  // Stop while responses are still being computed: must drain and return.
  server.value()->Stop();
}

}  // namespace
}  // namespace cqads::serve::net
