#include <gtest/gtest.h>

#include "common/rng.h"
#include "qlog/log_generator.h"
#include "qlog/ti_matrix.h"

namespace cqads::qlog {
namespace {

LogGenSpec TwoClusterSpec() {
  LogGenSpec spec;
  spec.values = {"honda accord", "toyota camry", "chevy malibu",
                 "ford mustang", "chevy corvette"};
  spec.cluster_of = {0, 0, 0, 1, 1};
  spec.num_sessions = 800;
  return spec;
}

TEST(LogGeneratorTest, Deterministic) {
  Rng a(42), b(42);
  QueryLog la = GenerateQueryLog(TwoClusterSpec(), &a);
  QueryLog lb = GenerateQueryLog(TwoClusterSpec(), &b);
  ASSERT_EQ(la.sessions.size(), lb.sessions.size());
  EXPECT_EQ(la.TotalQueries(), lb.TotalQueries());
  EXPECT_EQ(la.TotalClicks(), lb.TotalClicks());
  EXPECT_EQ(la.sessions[0].queries[0].value, lb.sessions[0].queries[0].value);
}

TEST(LogGeneratorTest, SessionShape) {
  Rng rng(7);
  auto spec = TwoClusterSpec();
  QueryLog log = GenerateQueryLog(spec, &rng);
  EXPECT_EQ(log.sessions.size(), spec.num_sessions);
  for (const auto& s : log.sessions) {
    ASSERT_GE(s.queries.size(),
              static_cast<std::size_t>(spec.min_queries_per_session));
    ASSERT_LE(s.queries.size(),
              static_cast<std::size_t>(spec.max_queries_per_session));
    // Timestamps are non-decreasing.
    for (std::size_t i = 1; i < s.queries.size(); ++i) {
      EXPECT_GE(s.queries[i].timestamp, s.queries[i - 1].timestamp);
    }
    for (const auto& q : s.queries) {
      for (const auto& c : q.clicks) {
        EXPECT_GE(c.rank, 1);
        EXPECT_GT(c.dwell_seconds, 0.0);
      }
    }
  }
}

TEST(LogGeneratorTest, EmptySpecYieldsEmptyLog) {
  Rng rng(1);
  LogGenSpec spec;
  EXPECT_TRUE(GenerateQueryLog(spec, &rng).sessions.empty());
}

TEST(LogGeneratorTest, MismatchedClustersYieldEmptyLog) {
  Rng rng(1);
  LogGenSpec spec;
  spec.values = {"a", "b"};
  spec.cluster_of = {0};
  EXPECT_TRUE(GenerateQueryLog(spec, &rng).sessions.empty());
}

TEST(TiMatrixTest, RecoversClusterStructure) {
  Rng rng(42);
  QueryLog log = GenerateQueryLog(TwoClusterSpec(), &rng);
  TiMatrix m = TiMatrix::Build(log);
  // The headline property (§4.3.2): same-segment identities are more
  // similar than cross-segment ones.
  double same = m.Sim("honda accord", "toyota camry");
  double cross = m.Sim("honda accord", "chevy corvette");
  EXPECT_GT(same, cross);
  double same2 = m.Sim("ford mustang", "chevy corvette");
  double cross2 = m.Sim("ford mustang", "chevy malibu");
  EXPECT_GT(same2, cross2);
}

TEST(TiMatrixTest, SymmetricLookup) {
  Rng rng(42);
  TiMatrix m = TiMatrix::Build(GenerateQueryLog(TwoClusterSpec(), &rng));
  EXPECT_DOUBLE_EQ(m.Sim("honda accord", "toyota camry"),
                   m.Sim("toyota camry", "honda accord"));
}

TEST(TiMatrixTest, SelfSimilarityIsZero) {
  Rng rng(42);
  TiMatrix m = TiMatrix::Build(GenerateQueryLog(TwoClusterSpec(), &rng));
  EXPECT_DOUBLE_EQ(m.Sim("honda accord", "honda accord"), 0.0);
}

TEST(TiMatrixTest, UnknownPairIsZero) {
  Rng rng(42);
  TiMatrix m = TiMatrix::Build(GenerateQueryLog(TwoClusterSpec(), &rng));
  EXPECT_DOUBLE_EQ(m.Sim("honda accord", "unknown thing"), 0.0);
}

TEST(TiMatrixTest, SimBoundedByFeatureCount) {
  // Eq. 3 sums five max-normalized features: TI_Sim in [0, 5].
  Rng rng(42);
  TiMatrix m = TiMatrix::Build(GenerateQueryLog(TwoClusterSpec(), &rng));
  EXPECT_GT(m.MaxSim(), 0.0);
  EXPECT_LE(m.MaxSim(), 5.0);
}

TEST(TiMatrixTest, MostSimilarSortedDescending) {
  Rng rng(42);
  TiMatrix m = TiMatrix::Build(GenerateQueryLog(TwoClusterSpec(), &rng));
  auto top = m.MostSimilar("honda accord", 3);
  ASSERT_GE(top.size(), 2u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
  // The most similar identity is a same-segment one.
  EXPECT_TRUE(top[0].first == "toyota camry" ||
              top[0].first == "chevy malibu");
}

TEST(TiMatrixTest, FeaturesAccumulated) {
  QueryLog log;
  Session s;
  s.user_id = "u1";
  LogQuery q1;
  q1.timestamp = 0;
  q1.value = "a";
  q1.clicks.push_back({"b", 2, 30.0});
  LogQuery q2;
  q2.timestamp = 60;
  q2.value = "b";
  s.queries = {q1, q2};
  log.sessions.push_back(s);

  TiMatrix m = TiMatrix::Build(log);
  PairFeatures f = m.Features("a", "b");
  EXPECT_DOUBLE_EQ(f.mod_count, 1.0);
  EXPECT_DOUBLE_EQ(f.time_sum, 60.0);
  EXPECT_DOUBLE_EQ(f.click_count, 1.0);
  EXPECT_DOUBLE_EQ(f.rank_sum, 0.5);
  EXPECT_DOUBLE_EQ(f.dwell_sum, 30.0);
  EXPECT_GT(m.Sim("a", "b"), 0.0);
}

TEST(TiMatrixTest, EmptyLog) {
  TiMatrix m = TiMatrix::Build(QueryLog{});
  EXPECT_EQ(m.pair_count(), 0u);
  EXPECT_DOUBLE_EQ(m.MaxSim(), 0.0);
}

}  // namespace
}  // namespace cqads::qlog
