#include <gtest/gtest.h>

#include "datagen/ads_generator.h"
#include "eval/appraiser.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "test_fixtures.h"

namespace cqads::eval {
namespace {

// ------------------------------------------------------------- metrics

TEST(MetricsTest, PrfBasics) {
  auto prf = ComputePRF({1, 2, 3, 4}, {2, 3, 5});
  EXPECT_DOUBLE_EQ(prf.precision, 0.5);        // 2 of 4 retrieved correct
  EXPECT_DOUBLE_EQ(prf.recall, 2.0 / 3.0);     // 2 of 3 relevant found
  EXPECT_NEAR(prf.f1, 2 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0), 1e-12);
}

TEST(MetricsTest, PrfEmptyRetrievedIsZero) {
  auto prf = ComputePRF({}, {1, 2});
  EXPECT_DOUBLE_EQ(prf.precision, 0.0);
  EXPECT_DOUBLE_EQ(prf.recall, 0.0);
  EXPECT_DOUBLE_EQ(prf.f1, 0.0);
}

TEST(MetricsTest, PrfBothEmptyIsPerfect) {
  auto prf = ComputePRF({}, {});
  EXPECT_DOUBLE_EQ(prf.f1, 1.0);
}

TEST(MetricsTest, PrfRecallCapped) {
  // 40 relevant, cap 30: finding 30 of them is full recall (§5.3's
  // up-to-30 evaluation).
  std::vector<unsigned> retrieved, relevant;
  for (unsigned i = 0; i < 30; ++i) retrieved.push_back(i);
  for (unsigned i = 0; i < 40; ++i) relevant.push_back(i);
  auto prf = ComputePRF(retrieved, relevant, 30);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
}

TEST(MetricsTest, PrecisionAtK) {
  std::vector<double> rel = {1.0, 0.0, 0.5, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 5), 0.5);
  // Missing positions count as zero.
  EXPECT_DOUBLE_EQ(PrecisionAtK({1.0}, 5), 0.2);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, 5), 0.0);
}

TEST(MetricsTest, ReciprocalRank) {
  EXPECT_DOUBLE_EQ(ReciprocalRank({true, false}), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({false, false, true}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({false, false}), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({}), 0.0);
}

TEST(MetricsTest, MeanAccumulator) {
  MeanAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  acc.Add(1.0);
  acc.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.Mean(), 2.0);
  EXPECT_EQ(acc.count(), 2u);
}

// ------------------------------------------------------------- appraiser

class AppraiserTest : public ::testing::Test {
 protected:
  AppraiserTest() {
    Rng rng(21);
    spec_ = datagen::FindDomainSpec("cars");
    auto t = datagen::GenerateAds(*spec_, 250, &rng);
    table_ = std::make_unique<db::Table>(std::move(t).value());
  }

  datagen::GeneratedQuestion MakeQuestion() {
    // Intent: toyota camry, blue, price < 12000.
    datagen::IntentUnit identity;
    identity.kind = datagen::IntentUnit::Kind::kIdentity;
    identity.identity = {{0, "toyota"}, {1, "camry"}};
    identity.cluster = 1;  // midsize

    datagen::IntentUnit color;
    color.kind = datagen::IntentUnit::Kind::kTypeII;
    color.attr = 5;
    color.values = {"blue"};
    color.groups = {2};  // {blue, navy}

    datagen::IntentUnit price;
    price.kind = datagen::IntentUnit::Kind::kTypeIII;
    price.attr = 3;
    price.op = db::CompareOp::kLt;
    price.lo = 12000;

    datagen::GeneratedQuestion q;
    q.domain = "cars";
    q.segments = {{identity, color, price}};
    return q;
  }

  db::RowId FindRow(const std::function<bool(db::RowId)>& pred) {
    for (db::RowId r = 0; r < table_->num_rows(); ++r) {
      if (pred(r)) return r;
    }
    return table_->num_rows();
  }

  const datagen::DomainSpec* spec_;
  std::unique_ptr<db::Table> table_;
};

TEST_F(AppraiserTest, FullSatisfactionIsRelated) {
  Appraiser appraiser(spec_, table_.get(), AppraiserOptions{});
  auto q = MakeQuestion();
  db::RowId row = FindRow([&](db::RowId r) {
    return table_->cell(r, 0).text() == "toyota" &&
           table_->cell(r, 1).text() == "camry" &&
           table_->cell(r, 5).text() == "blue" &&
           table_->cell(r, 3).AsDouble() < 12000;
  });
  if (row < table_->num_rows()) {
    EXPECT_TRUE(appraiser.IsRelatedTruth(q, row));
  }
}

TEST_F(AppraiserTest, SameSegmentMissIsRelated) {
  Appraiser appraiser(spec_, table_.get(), AppraiserOptions{});
  auto q = MakeQuestion();
  // A honda accord (same midsize segment) that is blue and cheap misses
  // only the identity, closely.
  db::RowId row = FindRow([&](db::RowId r) {
    return table_->cell(r, 1).text() == "accord" &&
           table_->cell(r, 5).text() == "blue" &&
           table_->cell(r, 3).AsDouble() < 12000;
  });
  if (row < table_->num_rows()) {
    EXPECT_TRUE(appraiser.IsRelatedTruth(q, row));
  }
}

TEST_F(AppraiserTest, FarSegmentMissIsUnrelated) {
  Appraiser appraiser(spec_, table_.get(), AppraiserOptions{});
  auto q = MakeQuestion();
  // A truck that is blue and cheap misses the identity NOT closely.
  db::RowId row = FindRow([&](db::RowId r) {
    return table_->cell(r, 1).text() == "silverado" &&
           table_->cell(r, 5).text() == "blue" &&
           table_->cell(r, 3).AsDouble() < 12000;
  });
  if (row < table_->num_rows()) {
    EXPECT_FALSE(appraiser.IsRelatedTruth(q, row));
  }
}

TEST_F(AppraiserTest, TwoMissesAreUnrelated) {
  Appraiser appraiser(spec_, table_.get(), AppraiserOptions{});
  auto q = MakeQuestion();
  db::RowId row = FindRow([&](db::RowId r) {
    return table_->cell(r, 1).text() == "accord" &&
           table_->cell(r, 5).text() == "red" &&
           table_->cell(r, 3).AsDouble() < 12000;
  });
  if (row < table_->num_rows()) {
    EXPECT_FALSE(appraiser.IsRelatedTruth(q, row));
  }
}

TEST_F(AppraiserTest, RelatedGroupColorIsClose) {
  Appraiser appraiser(spec_, table_.get(), AppraiserOptions{});
  auto q = MakeQuestion();
  // navy is in blue's related group.
  db::RowId row = FindRow([&](db::RowId r) {
    return table_->cell(r, 0).text() == "toyota" &&
           table_->cell(r, 1).text() == "camry" &&
           table_->cell(r, 5).text() == "navy" &&
           table_->cell(r, 3).AsDouble() < 12000;
  });
  if (row < table_->num_rows()) {
    EXPECT_TRUE(appraiser.IsRelatedTruth(q, row));
  }
}

TEST_F(AppraiserTest, NoiseFlipsJudgements) {
  AppraiserOptions noisy;
  noisy.noise = 1.0;  // always flip
  Appraiser appraiser(spec_, table_.get(), noisy);
  auto q = MakeQuestion();
  Rng rng(3);
  bool truth = appraiser.IsRelatedTruth(q, 0);
  EXPECT_EQ(appraiser.Judge(q, 0, &rng), !truth);
}

// ------------------------------------------------------------- interp norm

TEST(NormalizeInterpretationTest, OrderInsensitive) {
  db::Schema schema = cqads::testing::MiniCarSchema();
  db::Predicate a;
  a.attr = 0;
  a.value = db::Value::Text("honda");
  db::Predicate b;
  b.attr = 5;
  b.value = db::Value::Text("blue");
  auto e1 = db::Expr::MakeAnd(
      {db::Expr::MakePredicate(a), db::Expr::MakePredicate(b)});
  auto e2 = db::Expr::MakeAnd(
      {db::Expr::MakePredicate(b), db::Expr::MakePredicate(a)});
  EXPECT_EQ(NormalizeInterpretation(schema, e1),
            NormalizeInterpretation(schema, e2));
}

TEST(NormalizeInterpretationTest, FlattensNestedSameKind) {
  db::Schema schema = cqads::testing::MiniCarSchema();
  db::Predicate a;
  a.attr = 0;
  a.value = db::Value::Text("honda");
  db::Predicate b;
  b.attr = 1;
  b.value = db::Value::Text("accord");
  db::Predicate c;
  c.attr = 5;
  c.value = db::Value::Text("blue");
  auto nested = db::Expr::MakeAnd(
      {db::Expr::MakeAnd({db::Expr::MakePredicate(a),
                          db::Expr::MakePredicate(b)}),
       db::Expr::MakePredicate(c)});
  auto flat = db::Expr::MakeAnd({db::Expr::MakePredicate(a),
                                 db::Expr::MakePredicate(b),
                                 db::Expr::MakePredicate(c)});
  EXPECT_EQ(NormalizeInterpretation(schema, nested),
            NormalizeInterpretation(schema, flat));
}

TEST(NormalizeInterpretationTest, DistinguishesAndFromOr) {
  db::Schema schema = cqads::testing::MiniCarSchema();
  db::Predicate a;
  a.attr = 0;
  a.value = db::Value::Text("honda");
  db::Predicate b;
  b.attr = 5;
  b.value = db::Value::Text("blue");
  auto e1 = db::Expr::MakeAnd(
      {db::Expr::MakePredicate(a), db::Expr::MakePredicate(b)});
  auto e2 = db::Expr::MakeOr(
      {db::Expr::MakePredicate(a), db::Expr::MakePredicate(b)});
  EXPECT_NE(NormalizeInterpretation(schema, e1),
            NormalizeInterpretation(schema, e2));
}

TEST(NormalizeInterpretationTest, NullExprEmpty) {
  db::Schema schema = cqads::testing::MiniCarSchema();
  EXPECT_EQ(NormalizeInterpretation(schema, nullptr), "");
}

}  // namespace
}  // namespace cqads::eval
