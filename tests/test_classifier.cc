#include <gtest/gtest.h>

#include <cmath>

#include "classify/beta_binomial.h"
#include "classify/question_classifier.h"

namespace cqads::classify {
namespace {

// ------------------------------------------------------------ beta-binomial

TEST(BetaBinomialTest, PmfSumsToOne) {
  BetaBinomialParams params{2.0, 5.0};
  for (std::size_t n : {1u, 5u, 20u}) {
    double total = 0.0;
    for (std::size_t k = 0; k <= n; ++k) {
      total += std::exp(BetaBinomialLogPmf(k, n, params));
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "n=" << n;
  }
}

TEST(BetaBinomialTest, KGreaterThanNImpossible) {
  BetaBinomialParams params{1.0, 1.0};
  EXPECT_LT(BetaBinomialLogPmf(5, 3, params), -1e100);
}

TEST(BetaBinomialTest, UniformCaseMatchesClosedForm) {
  // alpha = beta = 1 gives the uniform distribution over 0..n.
  BetaBinomialParams params{1.0, 1.0};
  for (std::size_t k = 0; k <= 4; ++k) {
    EXPECT_NEAR(std::exp(BetaBinomialLogPmf(k, 4, params)), 0.2, 1e-9);
  }
}

TEST(BetaBinomialTest, OverdispersionFavoursBursts) {
  // Burstiness (§3): with small alpha+beta (heavy overdispersion), seeing
  // the word several times is MORE likely than under a binomial with the
  // same mean.
  BetaBinomialParams bursty{0.1, 0.9};  // mean 0.1, highly overdispersed
  double p_burst = std::exp(BetaBinomialLogPmf(5, 10, bursty));
  // Binomial(10, 0.1) at k=5: C(10,5) 0.1^5 0.9^5.
  double p_binom = 252.0 * std::pow(0.1, 5) * std::pow(0.9, 5);
  EXPECT_GT(p_burst, p_binom);
}

TEST(BetaBinomialTest, FitRecoverRoughMean) {
  // Observations with empirical rate 0.25 and some dispersion.
  std::vector<std::pair<std::size_t, std::size_t>> obs = {
      {2, 10}, {3, 10}, {1, 10}, {4, 10}, {2, 10}, {3, 10}, {2, 10}};
  auto params = FitBetaBinomial(obs, 0.5);
  EXPECT_NEAR(params.MeanProbability(), 0.25, 0.08);
}

TEST(BetaBinomialTest, FitFallsBackOnSparseData) {
  auto params = FitBetaBinomial({{1, 10}}, 0.3, 2.0);
  EXPECT_NEAR(params.MeanProbability(), 0.3, 1e-9);
  EXPECT_NEAR(params.alpha + params.beta, 2.0, 1e-9);
}

TEST(BetaBinomialTest, FitFallsBackOnZeroVariance) {
  std::vector<std::pair<std::size_t, std::size_t>> obs(5, {2, 10});
  auto params = FitBetaBinomial(obs, 0.2, 2.0);
  EXPECT_NEAR(params.MeanProbability(), 0.2, 1e-9);
}

// ------------------------------------------------------------ features

TEST(ExtractFeaturesTest, StopwordsAndNumbersDropped) {
  auto feats = ExtractFeatures("I want a honda for 5000");
  EXPECT_EQ(feats, (std::vector<std::string>{"honda"}));
}

TEST(ExtractFeaturesTest, OperatorWordsDropped) {
  auto feats = ExtractFeatures("car below 7000 and not less than 2000");
  EXPECT_EQ(feats, (std::vector<std::string>{"car"}));
}

TEST(ExtractFeaturesTest, MixedTokensKept) {
  auto feats = ExtractFeatures("2dr civic");
  ASSERT_EQ(feats.size(), 2u);
  EXPECT_EQ(feats[0], "2dr");
}

TEST(ExtractFeaturesTest, WordsAreStemmed) {
  auto feats = ExtractFeatures("leather seats");
  ASSERT_EQ(feats.size(), 2u);
  EXPECT_EQ(feats[1], "seat");
}

// ------------------------------------------------------------ classifier

std::vector<LabelledDoc> ToyCorpus() {
  return {
      {"honda accord sedan automatic blue car vehicle", "cars"},
      {"toyota camry car sedan red leather vehicle", "cars"},
      {"ford focus car manual white cheap vehicle", "cars"},
      {"kawasaki ninja motorcycle bike green helmet", "motorcycles"},
      {"harley sportster motorcycle cruiser bike saddlebags", "motorcycles"},
      {"yamaha r6 sport bike motorcycle fairing", "motorcycles"},
      {"gold diamond ring jewellery carat gem", "jewellery"},
      {"silver necklace pendant jewellery gem sapphire", "jewellery"},
      {"platinum bracelet watch jewellery gem", "jewellery"},
  };
}

TEST(QuestionClassifierTest, TrainRequiresDocs) {
  QuestionClassifier clf;
  EXPECT_FALSE(clf.Train({}).ok());
}

TEST(QuestionClassifierTest, UntrainedReturnsEmpty) {
  QuestionClassifier clf;
  EXPECT_EQ(clf.Classify("honda"), "");
  EXPECT_TRUE(clf.Scores("honda").empty());
}

TEST(QuestionClassifierTest, JbbsmClassifiesDistinctiveQuestions) {
  QuestionClassifier clf;
  ASSERT_TRUE(clf.Train(ToyCorpus()).ok());
  EXPECT_EQ(clf.Classify("looking for a honda accord"), "cars");
  EXPECT_EQ(clf.Classify("kawasaki ninja bike"), "motorcycles");
  EXPECT_EQ(clf.Classify("diamond ring under 3000"), "jewellery");
}

TEST(QuestionClassifierTest, MultinomialClassifiesToo) {
  QuestionClassifier::Options opts;
  opts.model = QuestionClassifier::Model::kMultinomial;
  QuestionClassifier clf(opts);
  ASSERT_TRUE(clf.Train(ToyCorpus()).ok());
  EXPECT_EQ(clf.Classify("honda accord sedan"), "cars");
  EXPECT_EQ(clf.Classify("gold necklace"), "jewellery");
}

TEST(QuestionClassifierTest, ScoresSortedDescending) {
  QuestionClassifier clf;
  ASSERT_TRUE(clf.Train(ToyCorpus()).ok());
  auto scores = clf.Scores("honda accord");
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(scores[0].first, "cars");
  for (std::size_t i = 1; i < scores.size(); ++i) {
    EXPECT_GE(scores[i - 1].second, scores[i].second);
  }
}

TEST(QuestionClassifierTest, ClassesSortedAndComplete) {
  QuestionClassifier clf;
  ASSERT_TRUE(clf.Train(ToyCorpus()).ok());
  EXPECT_EQ(clf.classes(), (std::vector<std::string>{
                               "cars", "jewellery", "motorcycles"}));
  EXPECT_GT(clf.vocabulary_size(), 10u);
}

TEST(QuestionClassifierTest, SharedVocabularyConfusesNeighbours) {
  // "yamaha" appears in motorcycles; a cars/motorcycles ambiguity mirrors
  // the paper's Fig. 2 observation. An ambiguous word alone should at least
  // classify into one of the overlapping classes, not jewellery.
  QuestionClassifier clf;
  ASSERT_TRUE(clf.Train(ToyCorpus()).ok());
  std::string cls = clf.Classify("red vehicle bike");
  EXPECT_NE(cls, "jewellery");
}

TEST(QuestionClassifierTest, PriorBreaksTiesForUnseenText) {
  QuestionClassifier clf;
  ASSERT_TRUE(clf.Train(ToyCorpus()).ok());
  // Totally unseen text: any class is fine, but it must not crash and must
  // return a valid class.
  std::string cls = clf.Classify("zzz qqq www");
  EXPECT_TRUE(cls == "cars" || cls == "motorcycles" || cls == "jewellery");
}

}  // namespace
}  // namespace cqads::classify
