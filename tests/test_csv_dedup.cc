#include <gtest/gtest.h>

#include "db/csv.h"
#include "db/dedup.h"
#include "test_fixtures.h"

namespace cqads::db {
namespace {

// --------------------------------------------------------------------- CSV

TEST(CsvQuoteTest, PlainFieldUnquoted) {
  EXPECT_EQ(CsvQuote("honda"), "honda");
}

TEST(CsvQuoteTest, SpecialCharactersQuoted) {
  EXPECT_EQ(CsvQuote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvQuote("two\nlines"), "\"two\nlines\"");
}

TEST(SplitCsvLineTest, PlainFields) {
  EXPECT_EQ(SplitCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitCsvLineTest, EmptyFields) {
  EXPECT_EQ(SplitCsvLine(",x,"),
            (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitCsvLineTest, QuotedFieldWithComma) {
  EXPECT_EQ(SplitCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
}

TEST(SplitCsvLineTest, EscapedQuote) {
  EXPECT_EQ(SplitCsvLine("\"he said \"\"hi\"\"\",x"),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST(CsvRoundTripTest, ExportImportPreservesData) {
  Table original = cqads::testing::MiniCarTable();
  std::string csv = ExportCsv(original);
  auto imported = ImportCsv(original.schema(), csv);
  ASSERT_TRUE(imported.ok()) << imported.status();
  const Table& t = imported.value();
  ASSERT_EQ(t.num_rows(), original.num_rows());
  for (RowId r = 0; r < t.num_rows(); ++r) {
    for (std::size_t a = 0; a < t.schema().num_attributes(); ++a) {
      EXPECT_EQ(t.cell(r, a).AsText(), original.cell(r, a).AsText())
          << "row " << r << " attr " << a;
    }
  }
  EXPECT_TRUE(t.indexes_built());
}

TEST(CsvImportTest, HeaderIsCaseInsensitive) {
  Schema schema = cqads::testing::MiniCarSchema();
  std::string csv =
      "Make,Model,Year,Price,Mileage,Color,Transmission,Doors,Drivetrain,"
      "Features\n"
      "honda,accord,2004,9000,50000,blue,automatic,4 door,2 wheel drive,"
      "gps;stereo\n";
  auto t = ImportCsv(schema, csv);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t.value().num_rows(), 1u);
  EXPECT_EQ(t.value().CellElements(0, 9).size(), 2u);
}

TEST(CsvImportTest, EmptyFieldBecomesNull) {
  Schema schema = cqads::testing::MiniCarSchema();
  std::string csv =
      "make,model,year,price,mileage,color,transmission,doors,drivetrain,"
      "features\n"
      "honda,accord,,,,,,,,\n";
  auto t = ImportCsv(schema, csv);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_TRUE(t.value().cell(0, 2).is_null());
  EXPECT_TRUE(t.value().cell(0, 5).is_null());
}

TEST(CsvImportTest, RejectsBadHeader) {
  Schema schema = cqads::testing::MiniCarSchema();
  EXPECT_FALSE(ImportCsv(schema, "foo,bar\nx,y\n").ok());
}

TEST(CsvImportTest, RejectsWrongFieldCount) {
  Schema schema = cqads::testing::MiniCarSchema();
  std::string csv =
      "make,model,year,price,mileage,color,transmission,doors,drivetrain,"
      "features\n"
      "honda,accord\n";
  EXPECT_FALSE(ImportCsv(schema, csv).ok());
}

TEST(CsvImportTest, RejectsNonNumericValue) {
  Schema schema = cqads::testing::MiniCarSchema();
  std::string csv =
      "make,model,year,price,mileage,color,transmission,doors,drivetrain,"
      "features\n"
      "honda,accord,not_a_year,,,,,,,\n";
  EXPECT_FALSE(ImportCsv(schema, csv).ok());
}

TEST(CsvImportTest, RejectsEmptyInput) {
  Schema schema = cqads::testing::MiniCarSchema();
  EXPECT_FALSE(ImportCsv(schema, "").ok());
}

TEST(CsvImportTest, SkipsBlankLines) {
  Schema schema = cqads::testing::MiniCarSchema();
  std::string csv =
      "make,model,year,price,mileage,color,transmission,doors,drivetrain,"
      "features\n\n"
      "honda,accord,2004,9000,50000,blue,automatic,4 door,2 wheel drive,"
      "gps\n\n";
  auto t = ImportCsv(schema, csv);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t.value().num_rows(), 1u);
}

// ------------------------------------------------------------------- dedup

Table TableWithDuplicates() {
  Table t(cqads::testing::MiniCarSchema());
  auto add = [&](const char* make, const char* model, double year,
                 double price, double mileage, const char* color,
                 const char* features) {
    Record r(10);
    r[0] = Value::Text(make);
    r[1] = Value::Text(model);
    r[2] = Value::Real(year);
    r[3] = Value::Real(price);
    r[4] = Value::Real(mileage);
    r[5] = Value::Text(color);
    r[6] = Value::Text("automatic");
    r[7] = Value::Text("4 door");
    r[8] = Value::Text("2 wheel drive");
    r[9] = Value::Text(features);
    EXPECT_TRUE(t.Insert(std::move(r)).ok());
  };
  // Rows 0 & 1: re-posted listing (price nudged by <2%).
  add("honda", "accord", 2004, 10000, 50000, "blue", "gps;stereo");
  add("honda", "accord", 2004, 10100, 50000, "blue", "gps;stereo");
  // Row 2: same car but very different price: not a duplicate.
  add("honda", "accord", 2004, 14000, 50000, "blue", "gps;stereo");
  // Row 3: different color: not a duplicate (categoricals must match).
  add("honda", "accord", 2004, 10000, 50000, "red", "gps;stereo");
  // Rows 4 & 5: duplicate pair under a different identity.
  add("toyota", "camry", 2006, 8000, 60000, "white", "cd player");
  add("toyota", "camry", 2006, 8050, 60400, "white", "cd player");
  t.BuildIndexes();
  return t;
}

TEST(DedupTest, PairwiseChecks) {
  Table t = TableWithDuplicates();
  EXPECT_TRUE(AreNearDuplicates(t, 0, 1));
  EXPECT_FALSE(AreNearDuplicates(t, 0, 2));  // price 40% apart
  EXPECT_FALSE(AreNearDuplicates(t, 0, 3));  // color differs
  EXPECT_TRUE(AreNearDuplicates(t, 4, 5));
  EXPECT_FALSE(AreNearDuplicates(t, 0, 4));  // different identity
  EXPECT_TRUE(AreNearDuplicates(t, 2, 2));   // reflexive
}

TEST(DedupTest, CategoricalRequirementCanBeRelaxed) {
  Table t = TableWithDuplicates();
  DedupOptions relaxed;
  relaxed.require_equal_categoricals = false;
  EXPECT_TRUE(AreNearDuplicates(t, 0, 3, relaxed));  // color now ignored
}

TEST(DedupTest, FeatureOverlapMatters) {
  Table t(cqads::testing::MiniCarSchema());
  Record a(10), b(10);
  a[0] = b[0] = Value::Text("honda");
  a[1] = b[1] = Value::Text("accord");
  a[3] = b[3] = Value::Real(9000);
  a[9] = Value::Text("gps;stereo;sunroof");
  b[9] = Value::Text("leather seats;bluetooth");
  ASSERT_TRUE(t.Insert(std::move(a)).ok());
  ASSERT_TRUE(t.Insert(std::move(b)).ok());
  t.BuildIndexes();
  EXPECT_FALSE(AreNearDuplicates(t, 0, 1));
}

TEST(DedupTest, FindsDisjointGroups) {
  Table t = TableWithDuplicates();
  auto groups = FindDuplicateGroups(t);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<RowId>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<RowId>{4, 5}));
}

TEST(DedupTest, DeduplicateKeepsFirstOfEachGroup) {
  Table t = TableWithDuplicates();
  auto result = Deduplicate(t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 4u);  // 6 - 2 dropped
  EXPECT_TRUE(result.value().indexes_built());
  // Survivors: rows 0, 2, 3, 4 of the original.
  EXPECT_DOUBLE_EQ(result.value().cell(0, 3).AsDouble(), 10000.0);
  EXPECT_DOUBLE_EQ(result.value().cell(1, 3).AsDouble(), 14000.0);
}

TEST(DedupTest, CleanTableUntouched) {
  Table t = cqads::testing::MiniCarTable();
  EXPECT_TRUE(FindDuplicateGroups(t).empty());
  auto result = Deduplicate(t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), t.num_rows());
}

TEST(DedupTest, ToleranceBoundary) {
  Table t = TableWithDuplicates();
  DedupOptions strict;
  strict.numeric_tolerance = 0.0001;
  EXPECT_FALSE(AreNearDuplicates(t, 0, 1, strict));  // 1% price delta
  DedupOptions loose;
  loose.numeric_tolerance = 0.5;
  EXPECT_TRUE(AreNearDuplicates(t, 0, 2, loose));
}

}  // namespace
}  // namespace cqads::db
