#include "db/table.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "test_fixtures.h"

namespace cqads::db {
namespace {

TEST(TableTest, InsertAndRowAccess) {
  Table t = cqads::testing::MiniCarTable();
  EXPECT_EQ(t.num_rows(), cqads::testing::MiniCarRows().size());
  EXPECT_EQ(t.cell(0, 0).text(), "honda");
  EXPECT_DOUBLE_EQ(t.cell(0, 3).AsDouble(), 8900.0);
}

TEST(TableTest, InsertRejectsWrongArity) {
  Table t(cqads::testing::MiniCarSchema());
  auto r = t.Insert({Value::Text("honda")});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, InsertRejectsKindMismatch) {
  Table t(cqads::testing::MiniCarSchema());
  Record rec(10);
  rec[0] = Value::Text("honda");
  rec[1] = Value::Text("accord");
  rec[2] = Value::Text("not a number");  // year must be numeric
  auto r = t.Insert(std::move(rec));
  EXPECT_FALSE(r.ok());
}

TEST(TableTest, NullCellsAllowed) {
  Table t(cqads::testing::MiniCarSchema());
  Record rec(10);
  rec[0] = Value::Text("honda");
  rec[1] = Value::Text("accord");
  EXPECT_TRUE(t.Insert(std::move(rec)).ok());
}

TEST(TableTest, CellElementsSplitsTextList) {
  Table t = cqads::testing::MiniCarTable();
  auto elements = t.CellElements(0, 9);
  ASSERT_EQ(elements.size(), 2u);
  EXPECT_EQ(elements[0], "cd player");
  EXPECT_EQ(elements[1], "power steering");
}

TEST(TableTest, CellElementsSingleForCategorical) {
  Table t = cqads::testing::MiniCarTable();
  EXPECT_EQ(t.CellElements(0, 5), (std::vector<std::string>{"blue"}));
}

TEST(TableTest, CellElementsEmptyForNumeric) {
  Table t = cqads::testing::MiniCarTable();
  EXPECT_TRUE(t.CellElements(0, 3).empty());
}

TEST(TableTest, RowTextContainsAllValues) {
  Table t = cqads::testing::MiniCarTable();
  std::string text = t.RowText(0);
  EXPECT_NE(text.find("honda"), std::string::npos);
  EXPECT_NE(text.find("accord"), std::string::npos);
  EXPECT_NE(text.find("blue"), std::string::npos);
  EXPECT_NE(text.find("cd player"), std::string::npos);
  EXPECT_EQ(text.find(";"), std::string::npos);  // list separator removed
}

TEST(TableTest, HashIndexOnTypeI) {
  Table t = cqads::testing::MiniCarTable();
  const HashIndex* idx = t.hash_index(0);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Lookup("honda").size(), 4u);
  EXPECT_EQ(idx->Lookup("bmw").size(), 1u);
}

TEST(TableTest, SortedIndexOnNumeric) {
  Table t = cqads::testing::MiniCarTable();
  const SortedIndex* idx = t.sorted_index(3);
  ASSERT_NE(idx, nullptr);
  EXPECT_DOUBLE_EQ(idx->MinKey(), 5500.0);
  EXPECT_DOUBLE_EQ(idx->MaxKey(), 42000.0);
}

TEST(TableTest, IndexKindsDoNotCross) {
  Table t = cqads::testing::MiniCarTable();
  EXPECT_EQ(t.hash_index(3), nullptr);    // numeric attr: no hash index
  EXPECT_EQ(t.sorted_index(0), nullptr);  // categorical: no sorted index
  EXPECT_NE(t.ngram_index(0), nullptr);
  EXPECT_EQ(t.ngram_index(3), nullptr);
}

TEST(TableTest, IndexesNotBuiltUntilRequested) {
  Table t(cqads::testing::MiniCarSchema());
  EXPECT_FALSE(t.indexes_built());
  EXPECT_EQ(t.hash_index(0), nullptr);
}

TEST(TableTest, NumericRange) {
  Table t = cqads::testing::MiniCarTable();
  auto range = t.NumericRange(2);  // year
  ASSERT_TRUE(range.ok());
  EXPECT_DOUBLE_EQ(range.value().first, 2002.0);
  EXPECT_DOUBLE_EQ(range.value().second, 2010.0);
  EXPECT_FALSE(t.NumericRange(0).ok());   // categorical
  EXPECT_FALSE(t.NumericRange(99).ok());  // out of range
}

TEST(TableTest, FeatureListIndexedByElement) {
  Table t = cqads::testing::MiniCarTable();
  const HashIndex* idx = t.hash_index(9);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Lookup("gps").size(), 4u);
  EXPECT_EQ(idx->Lookup("cd player").size(), 7u);
}

TEST(DatabaseTest, AddAndGet) {
  Database db;
  EXPECT_TRUE(db.AddTable(cqads::testing::MiniCarTable()).ok());
  EXPECT_NE(db.GetTable("cars"), nullptr);
  EXPECT_EQ(db.GetTable("boats"), nullptr);
  EXPECT_EQ(db.Domains(), (std::vector<std::string>{"cars"}));
}

TEST(DatabaseTest, RejectsDuplicateDomain) {
  Database db;
  EXPECT_TRUE(db.AddTable(cqads::testing::MiniCarTable()).ok());
  auto st = db.AddTable(cqads::testing::MiniCarTable());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace cqads::db
