// Corruption robustness: a damaged snapshot must always fail OpenSnapshot
// with a clear Status — truncation, flipped bytes, byte-swapped magic,
// version skew, missing sections, and a fuzz-ish sweep of pseudo-random
// damage. Never UB, never a crash: these tests also run under ASan/UBSan
// in CI, where any out-of-bounds parse would abort the process.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cqads_engine.h"
#include "db/table.h"
#include "snapshot/serde.h"
#include "snapshot/snapshot_file.h"
#include "snapshot/xxhash64.h"
#include "test_fixtures.h"

namespace cqads {
namespace {

using snapshot::ByteWriter;
using snapshot::FileHeader;
using snapshot::SerdeAccess;
using snapshot::SnapshotFile;
using snapshot::SnapshotFileWriter;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "cqads_corrupt_" + name;
}

std::vector<unsigned char> Slurp(const std::string& path) {
  std::vector<unsigned char> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return out;
  unsigned char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

void Spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// One pristine snapshot of the mini car table, reused (read-only) by every
/// damage scenario in this file.
class CorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    path_ = new std::string(TempPath("base.snap"));
    SnapshotFileWriter writer;
    ByteWriter w;
    auto table = testing::MiniCarTable();
    SerdeAccess::WriteTable(table, &w);
    writer.AddSection("table", std::move(w));
    ByteWriter m;
    m.WriteString("meta payload");
    writer.AddSection("meta", std::move(m));
    auto size = writer.Finish(*path_);
    ASSERT_TRUE(size.ok()) << size.status().ToString();
    pristine_ = new std::vector<unsigned char>(Slurp(*path_));
    ASSERT_EQ(pristine_->size(), size.value());
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    delete pristine_;
  }

  /// Writes a damaged copy and asserts Open fails with DataLoss.
  static void ExpectDataLoss(const std::vector<unsigned char>& bytes,
                             const std::string& label) {
    const std::string path = TempPath(label + ".snap");
    Spit(path, bytes);
    auto file = SnapshotFile::Open(path);
    EXPECT_FALSE(file.ok()) << label;
    if (!file.ok()) {
      EXPECT_EQ(file.status().code(), StatusCode::kDataLoss)
          << label << ": " << file.status().ToString();
    }
    std::remove(path.c_str());
  }

  static std::string* path_;
  static std::vector<unsigned char>* pristine_;
};

std::string* CorruptionTest::path_ = nullptr;
std::vector<unsigned char>* CorruptionTest::pristine_ = nullptr;

TEST_F(CorruptionTest, PristineOpens) {
  auto file = SnapshotFile::Open(*path_);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file.value().sections().size(), 2u);
}

TEST_F(CorruptionTest, TruncationAtEveryLayer) {
  const auto& bytes = *pristine_;
  // Cut points in every region: mid-header, mid-TOC, at section starts,
  // mid-payload, one byte short of complete.
  const std::vector<std::size_t> cuts = {
      0,  1,  8,  sizeof(FileHeader) - 1, sizeof(FileHeader),
      sizeof(FileHeader) + 13, 64, 128, bytes.size() / 2, bytes.size() - 1};
  for (std::size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    std::vector<unsigned char> t(bytes.begin(),
                                 bytes.begin() + static_cast<long>(cut));
    if (t.empty()) {
      // MappedArena rejects a zero-length file before mmap (which cannot
      // map empty files) — still a DataLoss, not an errno.
      const std::string path = TempPath("empty.snap");
      Spit(path, t);
      auto file = SnapshotFile::Open(path);
      EXPECT_FALSE(file.ok());
      EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
      std::remove(path.c_str());
      continue;
    }
    ExpectDataLoss(t, "trunc" + std::to_string(cut));
  }
}

TEST_F(CorruptionTest, SingleFlippedByteAnywhere) {
  // Flip one byte at a stride across the whole file (every byte is covered
  // by exactly one checksum, so each flip must be caught). Stride keeps the
  // sweep fast while still touching header, TOC, payload, and padding.
  const auto& bytes = *pristine_;
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::vector<unsigned char> t = bytes;
    t[pos] ^= 0xA5;
    ExpectDataLoss(t, "flip" + std::to_string(pos));
  }
}

TEST_F(CorruptionTest, ByteSwappedMagic) {
  std::vector<unsigned char> t = *pristine_;
  // Reverse the 8 magic bytes: the file looks like it came from an
  // opposite-endian writer; the error message must say so.
  for (std::size_t i = 0; i < 4; ++i) std::swap(t[i], t[7 - i]);
  const std::string path = TempPath("endian.snap");
  Spit(path, t);
  auto file = SnapshotFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(file.status().ToString().find("endian"), std::string::npos)
      << file.status().ToString();
  std::remove(path.c_str());
}

TEST_F(CorruptionTest, GarbageMagic) {
  std::vector<unsigned char> t = *pristine_;
  t[0] = 'P';
  t[1] = 'K';  // not a cqads snapshot
  ExpectDataLoss(t, "badmagic");
}

TEST_F(CorruptionTest, VersionSkew) {
  std::vector<unsigned char> t = *pristine_;
  // format_version lives at offset 12 (after magic + endian_mark). Bump it
  // and re-stamp the header checksum so ONLY the version check can fire —
  // proving skew is detected on its own, not via checksum fallout.
  FileHeader h;
  std::memcpy(&h, t.data(), sizeof(h));
  h.format_version = snapshot::kFormatVersion + 1;
  h.header_checksum = 0;
  h.header_checksum = snapshot::XxHash64(&h, sizeof(h));
  std::memcpy(t.data(), &h, sizeof(h));

  const std::string path = TempPath("skew.snap");
  Spit(path, t);
  auto file = SnapshotFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(file.status().ToString().find("version"), std::string::npos)
      << file.status().ToString();
  std::remove(path.c_str());
}

TEST_F(CorruptionTest, MissingSectionFailsLookup) {
  auto file = SnapshotFile::Open(*path_);
  ASSERT_TRUE(file.ok());
  auto missing = file.value().Find("classifier");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, DamagedPayloadNeverCrashesStructureParse) {
  // Bypass the container checksums entirely: hand deliberately damaged
  // bytes straight to the structure parser, simulating a checksum-passing
  // but semantically hostile stream. Every parse must return a Status.
  ByteWriter w;
  auto table = testing::MiniCarTable();
  SerdeAccess::WriteTable(table, &w);
  const std::vector<unsigned char> good = w.buffer();

  std::uint64_t rng = 0x243F6A8885A308D3ULL;  // fixed seed: deterministic
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  int failures = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<unsigned char> t = good;
    // 1-4 random mutations: byte flips, truncations, or count inflation.
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = next() % t.size();
      switch (next() % 3) {
        case 0:
          t[pos] ^= static_cast<unsigned char>(next());
          break;
        case 1:
          t.resize(pos + 1);
          break;
        default:
          // Stamp a huge little-endian count somewhere.
          for (std::size_t b = 0; b < 8 && pos + b < t.size(); ++b) {
            t[pos + b] = 0xFF;
          }
          break;
      }
    }
    snapshot::ByteReader r(t.data(), t.size(), "fuzz");
    std::unique_ptr<db::Table> out;
    Status st = SerdeAccess::ReadTable(&r, nullptr, &out);
    if (!st.ok()) ++failures;
    // st.ok() is possible (a mutation in unread padding or a value change
    // that stays structurally valid) — the invariant is no crash/UB.
  }
  // The vast majority of random damage must be *detected*, not silently
  // accepted (structural validation, not just bounds safety).
  EXPECT_GT(failures, 150);
}

TEST_F(CorruptionTest, RandomlyDamagedContainerSweep) {
  // End-to-end fuzz-ish pass over the whole container: random multi-byte
  // damage anywhere in the file must yield a non-OK Open.
  const auto& bytes = *pristine_;
  std::uint64_t rng = 0x13198A2E03707344ULL;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 100; ++round) {
    std::vector<unsigned char> t = bytes;
    const int edits = 1 + static_cast<int>(next() % 8);
    for (int e = 0; e < edits; ++e) {
      t[next() % t.size()] ^= static_cast<unsigned char>(1 + next() % 255);
    }
    ExpectDataLoss(t, "sweep" + std::to_string(round));
  }
}

TEST_F(CorruptionTest, EngineOpenSnapshotSurfacesDataLoss) {
  // The public entry point: a damaged engine snapshot file fails
  // CqadsEngine::OpenSnapshot with the same clear Status.
  std::vector<unsigned char> t = *pristine_;
  t[t.size() / 2] ^= 0xFF;
  const std::string path = TempPath("engine.snap");
  Spit(path, t);
  auto engine = core::CqadsEngine::OpenSnapshot(path);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cqads
