// Unit tests for the robustness substrate: Deadline/CancelToken/ExecControl
// semantics, the failpoint registry (arming, skip/every/limit schedules, the
// env spec parser, disarmed-cost invariants), and the WorkerPool shutdown
// contract the async serving path relies on (destruction DRAINS: queued
// unstarted tasks run; CancelPending is the explicit way to drop them).
#include "common/deadline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "serve/worker_pool.h"

namespace cqads {
namespace {

using std::chrono::hours;
using std::chrono::microseconds;
using std::chrono::milliseconds;

// --------------------------------------------------------------- Deadline

TEST(DeadlineTest, DefaultConstructedIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), Deadline::Clock::duration::max());
  EXPECT_EQ(d.time_point(), Deadline::Clock::time_point::max());
  EXPECT_TRUE(Deadline::Infinite().is_infinite());
}

TEST(DeadlineTest, ZeroOrNegativeBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::After(microseconds(0)).expired());
  EXPECT_TRUE(Deadline::After(milliseconds(-5)).expired());
  EXPECT_EQ(Deadline::After(milliseconds(-5)).remaining(),
            Deadline::Clock::duration::zero());
}

TEST(DeadlineTest, GenerousBudgetIsNotExpired) {
  Deadline d = Deadline::After(hours(1));
  EXPECT_FALSE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), milliseconds(0));
}

TEST(DeadlineTest, AtExpiresOncePassed) {
  const auto now = Deadline::Clock::now();
  EXPECT_TRUE(Deadline::At(now - milliseconds(1)).expired());
  EXPECT_FALSE(Deadline::At(now + hours(1)).expired());
}

TEST(DeadlineTest, EarlierPicksTheSoonerAndHandlesInfinite) {
  Deadline inf = Deadline::Infinite();
  Deadline soon = Deadline::After(milliseconds(1));
  Deadline late = Deadline::After(hours(1));
  EXPECT_EQ(Deadline::Earlier(soon, late).time_point(), soon.time_point());
  EXPECT_EQ(Deadline::Earlier(late, soon).time_point(), soon.time_point());
  EXPECT_EQ(Deadline::Earlier(inf, soon).time_point(), soon.time_point());
  EXPECT_EQ(Deadline::Earlier(soon, inf).time_point(), soon.time_point());
  EXPECT_TRUE(Deadline::Earlier(inf, inf).is_infinite());
}

// ------------------------------------------------ CancelToken/ExecControl

TEST(ExecControlTest, NullAndDefaultNeverStopAnything) {
  EXPECT_FALSE(ExecControl::Expired(nullptr));
  ExecControl control;
  EXPECT_FALSE(control.Expired());
}

TEST(ExecControlTest, RaisedTokenStopsWithoutClockRead) {
  CancelToken token;
  ExecControl control{Deadline::Infinite(), &token};
  EXPECT_FALSE(control.Expired());
  token.Cancel();
  // The deadline is infinite; only the token can make this true.
  EXPECT_TRUE(control.Expired());
  EXPECT_TRUE(ExecControl::Expired(&control));
}

TEST(ExecControlTest, ExpiredDeadlineRaisesTheTokenForSiblings) {
  CancelToken token;
  ExecControl control{Deadline::After(microseconds(0)), &token};
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(control.Expired());
  // Sibling workers sharing the token now stop with one relaxed load.
  EXPECT_TRUE(token.cancelled());
}

TEST(ExecControlTest, ExpiredWithoutTokenStillReports) {
  ExecControl control{Deadline::After(microseconds(0)), nullptr};
  EXPECT_TRUE(control.Expired());
}

// -------------------------------------------------------------- FailPoints

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::DisarmAll(); }
  void TearDown() override { FailPoints::DisarmAll(); }
};

TEST_F(FailPointTest, DisarmedSiteIsInvisible) {
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_TRUE(CQADS_FAILPOINT("test.nowhere").ok());
  EXPECT_EQ(FailPoints::Hits("test.nowhere"), 0u);
}

TEST_F(FailPointTest, ErrorInjectionAndHitCounting) {
  FailPoints::Config config;
  config.error = StatusCode::kInternal;
  FailPoints::Arm("test.err", config);
  EXPECT_TRUE(FailPoints::AnyArmed());

  Status st = CQADS_FAILPOINT("test.err");
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // Other sites stay clean while this one is armed.
  EXPECT_TRUE(CQADS_FAILPOINT("test.other").ok());
  EXPECT_EQ(FailPoints::Hits("test.err"), 1u);

  FailPoints::Disarm("test.err");
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_TRUE(CQADS_FAILPOINT("test.err").ok());
}

TEST_F(FailPointTest, SkipEveryNAndLimitSchedule) {
  FailPoints::Config config;
  config.error = StatusCode::kInternal;
  config.skip = 2;     // hits 1-2 pass
  config.every_n = 2;  // then the 1st eligible hit and every 2nd after
  config.limit = 2;    // and after 2 triggers the site goes quiet
  FailPoints::Arm("test.sched", config);

  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) {
    fired.push_back(!CQADS_FAILPOINT("test.sched").ok());
  }
  // skip eats hits 1-2; hits 3 and 5 trigger (every 2nd eligible, starting
  // with the first); the limit keeps hit 7 onward quiet.
  const std::vector<bool> expected = {false, false, true,  false, true,
                                      false, false, false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(FailPoints::Hits("test.sched"), 10u);  // counted even when quiet
}

TEST_F(FailPointTest, OneShot) {
  FailPoints::Config config;
  config.error = StatusCode::kInternal;
  config.limit = 1;
  FailPoints::Arm("test.oneshot", config);
  EXPECT_FALSE(CQADS_FAILPOINT("test.oneshot").ok());
  EXPECT_TRUE(CQADS_FAILPOINT("test.oneshot").ok());
  EXPECT_TRUE(CQADS_FAILPOINT("test.oneshot").ok());
}

TEST_F(FailPointTest, DelayInjection) {
  FailPoints::Config config;
  config.delay = milliseconds(20);
  FailPoints::Arm("test.slow", config);
  const auto start = std::chrono::steady_clock::now();
  CQADS_FAILPOINT_HIT("test.slow");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, milliseconds(20));
  // The void-site macro swallows injected errors (delay-only semantics).
  FailPoints::Config err;
  err.error = StatusCode::kInternal;
  FailPoints::Arm("test.swallowed", err);
  CQADS_FAILPOINT_HIT("test.swallowed");  // must not blow up
  EXPECT_EQ(FailPoints::Hits("test.swallowed"), 1u);
}

TEST_F(FailPointTest, RearmResetsCounters) {
  FailPoints::Config config;
  config.error = StatusCode::kInternal;
  config.limit = 1;
  FailPoints::Arm("test.rearm", config);
  EXPECT_FALSE(CQADS_FAILPOINT("test.rearm").ok());
  EXPECT_TRUE(CQADS_FAILPOINT("test.rearm").ok());  // limit reached
  FailPoints::Arm("test.rearm", config);            // re-arm: fresh counters
  EXPECT_EQ(FailPoints::Hits("test.rearm"), 0u);
  EXPECT_FALSE(CQADS_FAILPOINT("test.rearm").ok());
}

TEST_F(FailPointTest, ArmFromSpecParsesSitesAndIgnoresGarbage) {
  FailPoints::ArmFromSpec(
      "test.a=error:INTERNAL,limit:1;"
      "test.b=delay_us:1,every:2;"
      "garbage;=;test.c=error:NO_SUCH_CODE,bogus_key:7");
  EXPECT_TRUE(FailPoints::AnyArmed());
  EXPECT_EQ(CQADS_FAILPOINT("test.a").code(), StatusCode::kInternal);
  EXPECT_TRUE(CQADS_FAILPOINT("test.a").ok());  // one-shot spent
  // test.b is delay-only, so its Status is OK whether or not it triggers.
  EXPECT_TRUE(CQADS_FAILPOINT("test.b").ok());
  EXPECT_TRUE(CQADS_FAILPOINT("test.b").ok());
  EXPECT_EQ(FailPoints::Hits("test.b"), 2u);
  // Unknown error name parses as kOk: the site arms but injects nothing —
  // chaos arming must never break the process under test.
  EXPECT_TRUE(CQADS_FAILPOINT("test.c").ok());
}

TEST_F(FailPointTest, ErrorNamesAreCaseInsensitive) {
  FailPoints::ArmFromSpec("test.lower=error:not_found");
  EXPECT_EQ(CQADS_FAILPOINT("test.lower").code(), StatusCode::kNotFound);
  FailPoints::ArmFromSpec("test.dl=error:deadline_exceeded");
  EXPECT_EQ(CQADS_FAILPOINT("test.dl").code(),
            StatusCode::kDeadlineExceeded);
}

// -------------------------------------------- WorkerPool shutdown contract

using serve::WorkerPool;

TEST(WorkerPoolShutdownTest, DestructorRunsQueuedTasks) {
  // The documented contract: destruction DRAINS. Tasks still sitting in the
  // queue when the destructor starts must run, not be dropped — async
  // serving relies on every accepted request's callback firing.
  std::atomic<int> ran{0};
  {
    WorkerPool pool(2);
    // A slow head-of-queue task piles the rest up behind it.
    pool.Submit([&] {
      std::this_thread::sleep_for(milliseconds(30));
      ran.fetch_add(1);
    });
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    // Destructor fires here with most tasks still queued.
  }
  EXPECT_EQ(ran.load(), 51);
}

TEST(WorkerPoolShutdownTest, DrainWaitsForEverything) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(milliseconds(1));
      ran.fetch_add(1);
    });
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 32);
}

TEST(WorkerPoolShutdownTest, CancelPendingSkipsUnstartedTasks) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  // Park both workers so everything submitted after stays unstarted.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      while (!release.load()) std::this_thread::sleep_for(milliseconds(1));
      ran.fetch_add(1);
    });
  }
  // Give the workers a moment to claim the parking tasks.
  std::this_thread::sleep_for(milliseconds(20));
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  const std::size_t dropped = pool.CancelPending();
  EXPECT_EQ(dropped, 10u);
  release.store(true);
  pool.Wait();  // must not hang: in_flight accounting survived the cancel
  // Only the two parked (already-claimed) tasks ran.
  EXPECT_EQ(ran.load(), 2);
  // The pool stays usable after a cancel.
  pool.Submit([&] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 3);
}

}  // namespace
}  // namespace cqads
