#include "text/number_parser.h"

#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace cqads::text {
namespace {

struct NumberCase {
  const char* input;
  double value;
  bool had_magnitude;
};

class ParseNumberTest : public ::testing::TestWithParam<NumberCase> {};

TEST_P(ParseNumberTest, ParsesValue) {
  auto parsed = ParseNumberString(GetParam().input);
  ASSERT_TRUE(parsed.has_value()) << GetParam().input;
  EXPECT_DOUBLE_EQ(parsed->value, GetParam().value);
  EXPECT_EQ(parsed->had_magnitude, GetParam().had_magnitude);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseNumberTest,
    ::testing::Values(NumberCase{"5000", 5000, false},
                      NumberCase{"20k", 20000, true},
                      NumberCase{"20K", 20000, true},
                      NumberCase{"1.5k", 1500, true},
                      NumberCase{"2m", 2000000, true},
                      NumberCase{"3.5", 3.5, false},
                      NumberCase{"0", 0, false},
                      NumberCase{"two", 2, false},
                      NumberCase{"four", 4, false},
                      NumberCase{"twenty", 20, false},
                      NumberCase{"thousand", 1000, false}));

TEST(ParseNumberTest, RejectsNonNumbers) {
  EXPECT_FALSE(ParseNumberString("").has_value());
  EXPECT_FALSE(ParseNumberString("honda").has_value());
  EXPECT_FALSE(ParseNumberString("2dr").has_value());
  EXPECT_FALSE(ParseNumberString("k").has_value());
  EXPECT_FALSE(ParseNumberString("1.2.3").has_value());
  EXPECT_FALSE(ParseNumberString("12x").has_value());
}

TEST(ParseNumberTokenTest, CarriesMoneyFlag) {
  auto toks = Tokenize("$5,000");
  ASSERT_EQ(toks.size(), 1u);
  auto parsed = ParseNumberToken(toks[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->value, 5000.0);
  EXPECT_TRUE(parsed->is_money);
}

TEST(ParseNumberTokenTest, MixedTokenWithSuffix) {
  auto toks = Tokenize("20k");
  ASSERT_EQ(toks.size(), 1u);
  auto parsed = ParseNumberToken(toks[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->value, 20000.0);
  EXPECT_FALSE(parsed->is_money);
}

TEST(ParseNumberTokenTest, WordTokenRejected) {
  auto toks = Tokenize("mazda");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_FALSE(ParseNumberToken(toks[0]).has_value());
}

}  // namespace
}  // namespace cqads::text
