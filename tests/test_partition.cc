// Partition-sharded store + parallel plan execution: edge cases (rows
// exactly at a partition boundary, empty tables/partitions, single-row
// partitions) and differential parity — partitioned execution must be
// answer-identical to the monolithic planner and the seed executor for
// every query shape, serial or morsel-parallel on a WorkerPool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/cqads_engine.h"
#include "datagen/ads_generator.h"
#include "datagen/domain_spec.h"
#include "db/exec/morsel.h"
#include "db/exec/parallel_plan.h"
#include "db/exec/partitioned_table.h"
#include "db/exec/planner.h"
#include "db/executor.h"
#include "serve/worker_pool.h"
#include "test_fixtures.h"

namespace cqads {
namespace {

using db::exec::ParallelPlanner;
using db::exec::PartitionedTable;

db::Predicate TextPred(std::size_t attr, const char* v,
                       db::CompareOp op = db::CompareOp::kEq) {
  db::Predicate p;
  p.attr = attr;
  p.op = op;
  p.value = db::Value::Text(v);
  return p;
}

db::Predicate NumPred(std::size_t attr, db::CompareOp op, double v) {
  db::Predicate p;
  p.attr = attr;
  p.op = op;
  p.value = db::Value::Real(v);
  return p;
}

// ------------------------------------------------------------ morsels

TEST(MorselSchedulerTest, InlineWhenNoRunner) {
  std::vector<int> hits(17, 0);
  db::exec::RunMorsels(17, 4, nullptr,
                       [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(MorselSchedulerTest, EveryMorselRunsExactlyOnceOnPool) {
  serve::WorkerPool pool(4);
  constexpr std::size_t kMorsels = 250;
  std::vector<std::atomic<int>> hits(kMorsels);
  for (auto& h : hits) h = 0;
  db::exec::RunMorsels(kMorsels, 4, &pool, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(MorselSchedulerTest, ZeroMorselsIsANoop) {
  serve::WorkerPool pool(2);
  db::exec::RunMorsels(0, 4, &pool, [&](std::size_t) { FAIL(); });
}

// ------------------------------------------------- partition structure

TEST(PartitionedTableTest, TilesRowsInOrder) {
  db::Table table = testing::MiniCarTable();  // 13 rows
  auto pt = PartitionedTable::Build(table, 5);
  ASSERT_TRUE(pt.ok());
  const PartitionedTable& parts = *pt.value();
  ASSERT_EQ(parts.num_partitions(), 3u);  // 5 + 5 + 3
  EXPECT_EQ(parts.partition(0).num_rows(), 5u);
  EXPECT_EQ(parts.partition(1).num_rows(), 5u);
  EXPECT_EQ(parts.partition(2).num_rows(), 3u);
  EXPECT_EQ(parts.base_of(0), 0u);
  EXPECT_EQ(parts.base_of(1), 5u);
  EXPECT_EQ(parts.base_of(2), 10u);
  // Every partition row materializes to the same record as its global row.
  for (std::size_t p = 0; p < parts.num_partitions(); ++p) {
    for (db::RowId r = 0; r < parts.partition(p).num_rows(); ++r) {
      EXPECT_EQ(parts.partition(p).row(r), table.row(parts.base_of(p) + r));
    }
  }
}

TEST(PartitionedTableTest, RowsExactlyAtTheBoundary) {
  db::Table table = testing::MiniCarTable();  // 13 rows
  // 13 % 13 == 0: one full partition, no empty trailing partition.
  auto exact = PartitionedTable::Build(table, 13);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value()->num_partitions(), 1u);
  EXPECT_EQ(exact.value()->partition(0).num_rows(), 13u);

  // Partition size 1: every row its own shard with its own dictionaries.
  auto singles = PartitionedTable::Build(table, 1);
  ASSERT_TRUE(singles.ok());
  ASSERT_EQ(singles.value()->num_partitions(), 13u);
  for (std::size_t p = 0; p < 13; ++p) {
    EXPECT_EQ(singles.value()->partition(p).num_rows(), 1u);
  }

  // Larger than the table: one partition holding everything.
  auto one = PartitionedTable::Build(table, 1000);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value()->num_partitions(), 1u);
}

TEST(PartitionedTableTest, EmptyTableYieldsZeroPartitions) {
  db::Table table(testing::MiniCarSchema());
  table.BuildIndexes();
  auto pt = PartitionedTable::Build(table, 4);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value()->num_partitions(), 0u);

  // A plan over zero partitions executes to the empty set.
  ParallelPlanner planner(pt.value());
  db::Query q;
  q.where = db::Expr::MakePredicate(TextPred(0, "honda"));
  q.limit = 30;
  auto plan = planner.Compile(q);
  ASSERT_TRUE(plan.ok());
  auto res = plan.value()->Execute(nullptr, 1);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().rows.empty());
}

TEST(PartitionedTableTest, RejectsZeroPartitionSizeAndUnbuiltIndexes) {
  db::Table table = testing::MiniCarTable();
  EXPECT_FALSE(PartitionedTable::Build(table, 0).ok());
  db::Table unbuilt(testing::MiniCarSchema());
  EXPECT_FALSE(PartitionedTable::Build(unbuilt, 4).ok());
}

// ------------------------------------------------- answer-identity

/// Partitioned execution vs the monolithic planner vs the seed executor on
/// hand-picked query shapes, across partition sizes bracketing the
/// boundary cases.
TEST(PartitionedPlanTest, HandPickedQueriesMatchMonolith) {
  db::Table table = testing::MiniCarTable();
  db::Executor exec(&table);
  db::exec::Planner mono(&table);
  serve::WorkerPool pool(3);

  std::vector<db::Query> queries;
  {
    db::Query q;  // conjunction
    q.where = db::Expr::MakeAnd(
        {db::Expr::MakePredicate(TextPred(0, "honda")),
         db::Expr::MakePredicate(NumPred(3, db::CompareOp::kLt, 10000))});
    queries.push_back(q);
  }
  {
    db::Query q;  // superlative over everything
    q.superlative = db::Superlative{3, true};
    q.limit = 4;
    queries.push_back(q);
  }
  {
    db::Query q;  // superlative + filter, small cap straddling partitions
    q.where = db::Expr::MakePredicate(TextPred(5, "blue"));
    q.superlative = db::Superlative{4, false};
    q.limit = 3;
    queries.push_back(q);
  }
  {
    db::Query q;  // negation + disjunction
    q.where = db::Expr::MakeOr(
        {db::Expr::MakeNot(db::Expr::MakePredicate(TextPred(0, "honda"))),
         db::Expr::MakePredicate(TextPred(9, "gps", db::CompareOp::kContains))});
    queries.push_back(q);
  }
  {
    db::Query q;  // shorthand equality
    q.where = db::Expr::MakePredicate(TextPred(7, "4dr"));
    queries.push_back(q);
  }

  for (std::size_t rows_per_part : {1u, 4u, 5u, 13u, 64u}) {
    auto pt = PartitionedTable::Build(table, rows_per_part);
    ASSERT_TRUE(pt.ok());
    ParallelPlanner planner(pt.value());
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      auto expected = exec.Execute(queries[qi]);
      auto mono_plan = mono.Run(queries[qi]);
      auto plan = planner.Compile(queries[qi]);
      ASSERT_TRUE(expected.ok() && mono_plan.ok() && plan.ok());
      auto serial = plan.value()->Execute(nullptr, 1);
      auto parallel = plan.value()->Execute(&pool, 3);
      ASSERT_TRUE(serial.ok() && parallel.ok());
      EXPECT_EQ(mono_plan.value().rows, expected.value().rows)
          << "query " << qi;
      EXPECT_EQ(serial.value().rows, expected.value().rows)
          << "query " << qi << " parts=" << rows_per_part;
      EXPECT_EQ(parallel.value().rows, expected.value().rows)
          << "query " << qi << " parts=" << rows_per_part;
    }
  }
}

/// Randomized differential over datagen domains: partitioned (serial and
/// pooled) == seed executor for arbitrary expression trees.
TEST(PartitionedPlanTest, RandomizedDifferentialAcrossDomains) {
  serve::WorkerPool pool(4);
  for (const auto& spec : datagen::AllDomainSpecs()) {
    Rng rng(4242);
    auto table_result = datagen::GenerateAds(spec, 70, &rng);
    ASSERT_TRUE(table_result.ok()) << spec.schema.domain();
    const db::Table& table = table_result.value();
    db::Executor exec(&table);
    auto pt = PartitionedTable::Build(table, 16);  // 70 -> 16,16,16,16,6
    ASSERT_TRUE(pt.ok());
    ParallelPlanner planner(pt.value());

    const db::Schema& schema = table.schema();
    for (int trial = 0; trial < 25; ++trial) {
      db::Query q;
      std::vector<db::ExprPtr> parts;
      for (std::size_t a = 0; a < schema.num_attributes() && parts.size() < 2;
           ++a) {
        if (schema.attribute(a).data_kind == db::DataKind::kNumeric) {
          auto range = table.NumericRange(a);
          if (!range.ok()) continue;
          double t = rng.UniformReal(range.value().first,
                                     range.value().second);
          parts.push_back(db::Expr::MakePredicate(
              NumPred(a, trial % 2 == 0 ? db::CompareOp::kLt
                                        : db::CompareOp::kGe,
                      t)));
        } else {
          const db::HashIndex* idx = table.hash_index(a);
          auto keys = idx->Keys();
          if (keys.empty()) continue;
          parts.push_back(db::Expr::MakePredicate(TextPred(
              a, keys[rng.UniformIndex(keys.size())].c_str(),
              trial % 3 == 0 ? db::CompareOp::kNe : db::CompareOp::kEq)));
        }
      }
      if (parts.empty()) continue;
      q.where = parts.size() == 1 ? parts[0] : db::Expr::MakeAnd(parts);
      q.limit = table.num_rows();
      if (trial % 4 == 0) {
        for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
          if (schema.attribute(a).data_kind == db::DataKind::kNumeric) {
            q.superlative = db::Superlative{a, trial % 8 == 0};
            q.limit = 10;
            break;
          }
        }
      }

      auto expected = exec.Execute(q);
      auto plan = planner.Compile(q);
      ASSERT_TRUE(expected.ok() && plan.ok());
      auto got = plan.value()->Execute(&pool, 4);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value().rows, expected.value().rows)
          << spec.schema.domain() << " trial " << trial;
    }
  }
}

// ------------------------------------------------- engine integration

class PartitionedEngineTest : public ::testing::Test {
 protected:
  PartitionedEngineTest() : table_(testing::MiniCarTable()) {
    EXPECT_TRUE(engine_.AddDomain(&table_, qlog::TiMatrix()).ok());
    EXPECT_TRUE(engine_.TrainClassifier().ok());
  }

  std::string CanonicalAsk(const std::string& q) {
    auto r = engine_.AskInDomain("cars", q);
    return r.ok() ? core::CanonicalAskResultString(r.value()) : "ERROR";
  }

  db::Table table_;
  core::CqadsEngine engine_;
};

TEST_F(PartitionedEngineTest, SetOptionsReshardsAndAnswersAreIdentical) {
  const std::vector<std::string> questions = {
      "blue honda accord",
      "honda under 10000 dollars",
      "cheapest toyota",
      "manual red car with cd player",
      "4dr automatic",
  };
  std::vector<std::string> mono;
  for (const auto& q : questions) mono.push_back(CanonicalAsk(q));

  serve::WorkerPool pool(3);
  core::EngineOptions options;
  options.partition_rows = 4;
  options.exec_parallelism = 3;
  options.exec_runner = &pool;
  engine_.SetOptions(options);

  const core::DomainRuntime* rt = engine_.runtime("cars");
  ASSERT_NE(rt, nullptr);
  ASSERT_NE(rt->partitions, nullptr);
  EXPECT_EQ(rt->partitions->num_partitions(), 4u);  // 13 rows / 4

  for (std::size_t i = 0; i < questions.size(); ++i) {
    EXPECT_EQ(CanonicalAsk(questions[i]), mono[i]) << questions[i];
  }

  // Back to monolithic: partitions drop, answers unchanged.
  engine_.SetOptions(core::EngineOptions());
  rt = engine_.runtime("cars");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->partitions, nullptr);
  for (std::size_t i = 0; i < questions.size(); ++i) {
    EXPECT_EQ(CanonicalAsk(questions[i]), mono[i]) << questions[i];
  }
}

}  // namespace
}  // namespace cqads
