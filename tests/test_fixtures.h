// Shared test fixtures: a small deterministic car-ads table mirroring the
// paper's running example, plus helpers to build lexicons and engines on it.
#ifndef CQADS_TESTS_TEST_FIXTURES_H_
#define CQADS_TESTS_TEST_FIXTURES_H_

#include <memory>
#include <string>
#include <vector>

#include "db/schema.h"
#include "db/table.h"

namespace cqads::testing {

/// Car schema matching the paper's examples: make/model Type I, year/price/
/// mileage Type III, color/transmission/doors/drivetrain Type II, plus a
/// feature list.
inline db::Schema MiniCarSchema() {
  using db::AttrType;
  using db::Attribute;
  using db::DataKind;
  auto cat = [](std::string name, AttrType t,
                std::vector<std::string> aliases =
                    std::vector<std::string>{}) {
    Attribute a;
    a.name = std::move(name);
    a.attr_type = t;
    a.data_kind = DataKind::kCategorical;
    a.aliases = std::move(aliases);
    return a;
  };
  db::Attribute year;
  year.name = "year";
  year.attr_type = AttrType::kTypeIII;
  year.data_kind = DataKind::kNumeric;
  year.aliases = {"year"};
  db::Attribute price;
  price.name = "price";
  price.attr_type = AttrType::kTypeIII;
  price.data_kind = DataKind::kNumeric;
  price.unit_keywords = {"dollars", "dollar", "usd"};
  price.aliases = {"price", "cost"};
  db::Attribute mileage;
  mileage.name = "mileage";
  mileage.attr_type = AttrType::kTypeIII;
  mileage.data_kind = DataKind::kNumeric;
  mileage.unit_keywords = {"miles", "mi"};
  mileage.aliases = {"mileage"};
  db::Attribute features;
  features.name = "features";
  features.attr_type = AttrType::kTypeII;
  features.data_kind = DataKind::kTextList;

  return db::Schema("cars",
                    {cat("make", AttrType::kTypeI, {"maker"}),
                     cat("model", AttrType::kTypeI), year, price, mileage,
                     cat("color", AttrType::kTypeII, {"color"}),
                     cat("transmission", AttrType::kTypeII),
                     cat("doors", AttrType::kTypeII),
                     cat("drivetrain", AttrType::kTypeII), features});
}

struct MiniCar {
  const char* make;
  const char* model;
  double year;
  double price;
  double mileage;
  const char* color;
  const char* transmission;
  const char* doors;
  const char* drivetrain;
  const char* features;
};

/// Fixed fleet including Table 2's cast (Honda Accord, Chevy Malibu, Toyota
/// Camry, Ford Focus) with controlled attribute values.
inline const std::vector<MiniCar>& MiniCarRows() {
  static const std::vector<MiniCar>* kRows = new std::vector<MiniCar>{
      {"honda", "accord", 2007, 8900, 131000, "blue", "automatic", "4 door",
       "2 wheel drive", "cd player;power steering"},
      {"honda", "accord", 2004, 16536, 80000, "blue", "automatic", "4 door",
       "2 wheel drive", "cd player;cassette player"},
      {"honda", "accord", 2002, 6600, 150000, "gold", "automatic", "4 door",
       "2 wheel drive", "gps;auto off headlights"},
      {"honda", "civic", 2005, 5500, 90000, "red", "manual", "2 door",
       "2 wheel drive", "cd player"},
      {"chevy", "malibu", 2003, 5899, 120000, "blue", "automatic", "4 door",
       "2 wheel drive", "anti lock brakes;power steering"},
      {"toyota", "camry", 2006, 8561, 95000, "blue", "automatic", "4 door",
       "2 wheel drive", "cd player;power steering"},
      {"toyota", "corolla", 2008, 7200, 60000, "white", "automatic",
       "4 door", "2 wheel drive", "cd player"},
      {"ford", "focus", 2005, 6795, 88000, "blue", "manual", "2 door",
       "2 wheel drive", "cd player;radio;power door locks"},
      {"ford", "mustang", 2009, 18500, 30000, "red", "manual", "2 door",
       "2 wheel drive", "gps;leather seats"},
      {"bmw", "m3", 2010, 42000, 15000, "black", "manual", "2 door",
       "2 wheel drive", "gps;leather seats;sunroof"},
      {"toyota", "highlander", 2007, 15500, 70000, "silver", "automatic",
       "4 door", "4 wheel drive", "gps;backup camera"},
      {"jeep", "cherokee", 2004, 9800, 110000, "green", "automatic",
       "4 door", "4 wheel drive", "cruise control"},
      {"mazda", "mazda3", 2006, 7800, 72000, "silver", "automatic", "4 door",
       "2 wheel drive", "cd player;bluetooth"},
  };
  return *kRows;
}

inline db::Table MiniCarTable() {
  db::Table table(MiniCarSchema());
  for (const MiniCar& c : MiniCarRows()) {
    db::Record r;
    r.push_back(db::Value::Text(c.make));
    r.push_back(db::Value::Text(c.model));
    r.push_back(db::Value::Real(c.year));
    r.push_back(db::Value::Real(c.price));
    r.push_back(db::Value::Real(c.mileage));
    r.push_back(db::Value::Text(c.color));
    r.push_back(db::Value::Text(c.transmission));
    r.push_back(db::Value::Text(c.doors));
    r.push_back(db::Value::Text(c.drivetrain));
    r.push_back(db::Value::Text(c.features));
    auto id = table.Insert(std::move(r));
    if (!id.ok()) throw std::runtime_error(id.status().ToString());
  }
  table.BuildIndexes();
  return table;
}

}  // namespace cqads::testing

#endif  // CQADS_TESTS_TEST_FIXTURES_H_
