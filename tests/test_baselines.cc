#include <gtest/gtest.h>

#include "baselines/aimq_ranker.h"
#include "baselines/cosine_ranker.h"
#include "baselines/cqads_ranker.h"
#include "baselines/faqfinder_ranker.h"
#include "baselines/random_ranker.h"
#include "common/rng.h"
#include "qlog/log_generator.h"
#include "test_fixtures.h"

namespace cqads::baselines {
namespace {

core::MatchUnit IdentityUnit(const char* make, const char* model) {
  core::MatchUnit u;
  u.kind = core::MatchUnit::Kind::kIdentity;
  u.value = std::string(make) + " " + model;
  core::Condition c1;
  c1.kind = core::Condition::Kind::kTypeI;
  c1.attr = 0;
  c1.value = make;
  core::Condition c2 = c1;
  c2.attr = 1;
  c2.value = model;
  u.conds = {c1, c2};
  u.attr = 1;
  db::Predicate p1;
  p1.attr = 0;
  p1.value = db::Value::Text(make);
  db::Predicate p2;
  p2.attr = 1;
  p2.value = db::Value::Text(model);
  u.expr = db::Expr::MakeAnd(
      {db::Expr::MakePredicate(p1), db::Expr::MakePredicate(p2)});
  return u;
}

core::MatchUnit ColorUnit(const char* color) {
  core::MatchUnit u;
  u.kind = core::MatchUnit::Kind::kTypeII;
  u.attr = 5;
  u.value = color;
  core::Condition c;
  c.kind = core::Condition::Kind::kTypeII;
  c.attr = 5;
  c.value = color;
  u.conds = {c};
  db::Predicate p;
  p.attr = 5;
  p.value = db::Value::Text(color);
  u.expr = db::Expr::MakePredicate(p);
  return u;
}

core::MatchUnit PriceUnit(double lo) {
  core::MatchUnit u;
  u.kind = core::MatchUnit::Kind::kTypeIII;
  u.attr = 3;
  core::Condition c;
  c.kind = core::Condition::Kind::kTypeIIIBound;
  c.attr = 3;
  c.op = db::CompareOp::kLt;
  c.lo = lo;
  u.conds = {c};
  db::Predicate p;
  p.attr = 3;
  p.op = db::CompareOp::kLt;
  p.value = db::Value::Real(lo);
  u.expr = db::Expr::MakePredicate(p);
  return u;
}

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : table_(cqads::testing::MiniCarTable()) {
    input_.table = &table_;
    input_.question_text = "honda accord blue less than 15000 dollars";
    input_.units = {IdentityUnit("honda", "accord"), ColorUnit("blue"),
                    PriceUnit(15000)};
    for (db::RowId r = 0; r < table_.num_rows(); ++r) {
      if (r != 0) input_.candidates.push_back(r);  // row 0 is the exact match
    }
  }

  db::Table table_;
  RankInput input_;
};

TEST_F(BaselinesTest, SatisfiedUnitsCounts) {
  // Row 1: honda accord blue at 16536: fails only the price unit.
  EXPECT_EQ(SatisfiedUnits(input_, 1), 2u);
  // Row 5: toyota camry blue 8561: fails only identity.
  EXPECT_EQ(SatisfiedUnits(input_, 5), 2u);
  // Row 9: bmw black 42000: fails all three.
  EXPECT_EQ(SatisfiedUnits(input_, 9), 0u);
}

TEST_F(BaselinesTest, RandomRankerIsPermutationPrefix) {
  RandomRanker ranker(7);
  auto top = ranker.Rank(input_, 5);
  EXPECT_EQ(top.size(), 5u);
  std::set<db::RowId> uniq(top.begin(), top.end());
  EXPECT_EQ(uniq.size(), 5u);
  for (db::RowId r : top) {
    EXPECT_NE(std::find(input_.candidates.begin(), input_.candidates.end(), r),
              input_.candidates.end());
  }
}

TEST_F(BaselinesTest, RandomRankerDeterministicPerSeed) {
  RandomRanker a(7), b(7);
  EXPECT_EQ(a.Rank(input_, 5), b.Rank(input_, 5));
}

TEST_F(BaselinesTest, CosineScoreMonotoneInSatisfaction) {
  double two_of_three = CosineRanker::Score(input_, 1);
  double zero = CosineRanker::Score(input_, 9);
  EXPECT_GT(two_of_three, zero);
  EXPECT_DOUBLE_EQ(zero, 0.0);
  // sqrt(2/3) for 2 satisfied of 3.
  EXPECT_NEAR(two_of_three, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST_F(BaselinesTest, CosineRanksHighSatisfactionFirst) {
  CosineRanker ranker;
  auto top = ranker.Rank(input_, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(SatisfiedUnits(input_, top[0]), SatisfiedUnits(input_, top[2]));
}

TEST_F(BaselinesTest, AimqVSimSelfIsOne) {
  AimqRanker ranker(&table_);
  EXPECT_DOUBLE_EQ(ranker.VSim(0, "honda", "honda"), 1.0);
}

TEST_F(BaselinesTest, AimqVSimSharedContextPositive) {
  AimqRanker ranker(&table_);
  // honda and toyota co-occur with overlapping colors/transmissions.
  double related = ranker.VSim(0, "honda", "toyota");
  EXPECT_GT(related, 0.0);
  EXPECT_LT(related, 1.0);
}

TEST_F(BaselinesTest, AimqVSimUnknownValueZero) {
  AimqRanker ranker(&table_);
  EXPECT_DOUBLE_EQ(ranker.VSim(0, "honda", "nonexistent"), 0.0);
}

TEST_F(BaselinesTest, AimqScoreFavoursNearMisses) {
  AimqRanker ranker(&table_);
  // Row 1 (honda accord blue, price off) vs row 9 (bmw, black, far price).
  EXPECT_GT(ranker.Score(input_, 1), ranker.Score(input_, 9));
}

TEST_F(BaselinesTest, FaqFinderScoresTokenOverlap) {
  FaqFinderRanker ranker(&table_);
  // Row 1 shares "honda accord blue" with the question text.
  EXPECT_GT(ranker.Score(input_.question_text, 1),
            ranker.Score(input_.question_text, 11));
}

TEST_F(BaselinesTest, FaqFinderIgnoresNumericCloseness) {
  FaqFinderRanker ranker(&table_);
  // The paper's criticism: FAQFinder does not compare numeric attributes.
  // A record differing only in price text scores no better for a closer
  // price. Rows 4 and 5 are both blue automatic 4-door non-hondas.
  double s4 = ranker.Score("blue sedan 5899", 4);
  double s5 = ranker.Score("blue sedan 5899", 5);
  // Row 4 has price 5899 which appears verbatim: token equality, not
  // numeric reasoning, drives the score.
  EXPECT_GE(s4, s5);
}

TEST_F(BaselinesTest, CqadsRankerUsesUnitSimilarity) {
  qlog::LogGenSpec spec;
  spec.values = {"honda accord", "toyota camry", "bmw m3"};
  spec.cluster_of = {0, 0, 1};
  spec.num_sessions = 400;
  Rng rng(5);
  qlog::TiMatrix ti = qlog::TiMatrix::Build(qlog::GenerateQueryLog(spec, &rng));
  core::SimilarityContext ctx;
  ctx.ti = &ti;
  ctx.attr_ranges = core::ComputeAttrRanges(table_);

  CqadsRanker ranker(&ctx);
  // Row 5 (camry blue 8561, same segment) should outrank row 9 (bmw).
  EXPECT_GT(ranker.Score(input_, 5), ranker.Score(input_, 9));
  auto top = ranker.Rank(input_, 5);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top.size(), 5u);
}

TEST_F(BaselinesTest, AllRankersRespectK) {
  qlog::TiMatrix ti;
  core::SimilarityContext ctx;
  ctx.attr_ranges = core::ComputeAttrRanges(table_);
  CqadsRanker cqads(&ctx);
  AimqRanker aimq(&table_);
  CosineRanker cosine;
  FaqFinderRanker faq(&table_);
  RandomRanker random(1);
  for (Ranker* r : std::vector<Ranker*>{&cqads, &aimq, &cosine, &faq,
                                        &random}) {
    EXPECT_LE(r->Rank(input_, 2).size(), 2u) << r->name();
    EXPECT_LE(r->Rank(input_, 100).size(), input_.candidates.size())
        << r->name();
  }
}

TEST_F(BaselinesTest, RankerNames) {
  qlog::TiMatrix ti;
  core::SimilarityContext ctx;
  EXPECT_EQ(CqadsRanker(&ctx).name(), "CQAds");
  EXPECT_EQ(AimqRanker(&table_).name(), "AIMQ");
  EXPECT_EQ(CosineRanker().name(), "Cosine");
  EXPECT_EQ(FaqFinderRanker(&table_).name(), "FAQFinder");
  EXPECT_EQ(RandomRanker(1).name(), "Random");
}

}  // namespace
}  // namespace cqads::baselines
