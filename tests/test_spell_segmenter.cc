#include <gtest/gtest.h>

#include "trie/keyword_trie.h"
#include "trie/segmenter.h"
#include "trie/spell_corrector.h"

namespace cqads::trie {
namespace {

KeywordTrie MakeTrie() {
  KeywordTrie t;
  int h = 0;
  for (const char* kw :
       {"honda", "accord", "civic", "camry", "corolla", "toyota", "mazda",
        "blue", "red", "automatic", "manual", "door", "less than"}) {
    t.Insert(kw, h++);
  }
  return t;
}

// ---------------------------------------------------------------- spelling

TEST(SpellCorrectorTest, CorrectsTransposition) {
  auto t = MakeTrie();
  SpellCorrector corrector(&t);
  auto c = corrector.Correct("accrod");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->keyword, "accord");
}

TEST(SpellCorrectorTest, CorrectsMissingLetter) {
  auto t = MakeTrie();
  SpellCorrector corrector(&t);
  auto c = corrector.Correct("hnda");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->keyword, "honda");
}

TEST(SpellCorrectorTest, CorrectsTrailingTypo) {
  auto t = MakeTrie();
  SpellCorrector corrector(&t);
  auto c = corrector.Correct("accorr");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->keyword, "accord");
  EXPECT_GT(c->percent, 80.0);
}

TEST(SpellCorrectorTest, KnownKeywordNeedsNoCorrection) {
  auto t = MakeTrie();
  SpellCorrector corrector(&t);
  EXPECT_FALSE(corrector.Correct("honda").has_value());
}

TEST(SpellCorrectorTest, GarbageRejected) {
  auto t = MakeTrie();
  SpellCorrector corrector(&t);
  EXPECT_FALSE(corrector.Correct("zzzqqq").has_value());
  EXPECT_FALSE(corrector.Correct("").has_value());
}

TEST(SpellCorrectorTest, ThresholdRespected) {
  auto t = MakeTrie();
  SpellCorrector strict(&t, SpellCorrector::Options{99.0, 512});
  EXPECT_FALSE(strict.Correct("accrod").has_value());
}

TEST(SpellCorrectorTest, FirstLetterFallback) {
  // "cmary" shares only 'c' as a prefix; the fallback still finds "camry".
  auto t = MakeTrie();
  SpellCorrector corrector(&t);
  auto c = corrector.Correct("cmary");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->keyword, "camry");
}

TEST(SpellCorrectorTest, DeterministicTieBreak) {
  KeywordTrie t;
  t.Insert("aab", 0);
  t.Insert("aac", 1);
  // "aaz" scores 67% against both; lower the bar to observe tie-breaking.
  SpellCorrector corrector(&t, SpellCorrector::Options{60.0, 512});
  auto c1 = corrector.Correct("aaz");
  auto c2 = corrector.Correct("aaz");
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->keyword, c2->keyword);
  EXPECT_EQ(c1->keyword, "aab");  // lexicographically first on ties
}

// -------------------------------------------------------------- segmenting

TEST(SegmenterTest, SplitsTwoKeywords) {
  auto t = MakeTrie();
  EXPECT_EQ(SegmentWord(t, "hondaaccord"),
            (std::vector<std::string>{"honda", "accord"}));
}

TEST(SegmenterTest, SplitsKeywordAndDigits) {
  auto t = MakeTrie();
  EXPECT_EQ(SegmentWord(t, "honda2004"),
            (std::vector<std::string>{"honda", "2004"}));
  EXPECT_EQ(SegmentWord(t, "2004accord"),
            (std::vector<std::string>{"2004", "accord"}));
}

TEST(SegmenterTest, ThreeWaySplit) {
  auto t = MakeTrie();
  EXPECT_EQ(SegmentWord(t, "bluehondaaccord"),
            (std::vector<std::string>{"blue", "honda", "accord"}));
}

TEST(SegmenterTest, SingleKeywordNotSplit) {
  auto t = MakeTrie();
  EXPECT_TRUE(SegmentWord(t, "honda").empty());
}

TEST(SegmenterTest, UnknownSuffixFails) {
  auto t = MakeTrie();
  EXPECT_TRUE(SegmentWord(t, "hondaxyz").empty());
}

TEST(SegmenterTest, ShortInputsFail) {
  auto t = MakeTrie();
  EXPECT_TRUE(SegmentWord(t, "").empty());
  EXPECT_TRUE(SegmentWord(t, "h").empty());
}

TEST(SegmenterTest, BacktracksFromGreedyDeadEnd) {
  KeywordTrie t;
  t.Insert("carpet", 0);
  t.Insert("car", 1);
  t.Insert("pets", 2);
  t.Insert("pet", 3);
  // Greedy "carpet" leaves "s" unparseable; backtracking finds car+pets.
  EXPECT_EQ(SegmentWord(t, "carpets"),
            (std::vector<std::string>{"car", "pets"}));
}

TEST(SegmenterTest, PureDigitsNotASegmentation) {
  auto t = MakeTrie();
  // A lone digit run is one segment, and one segment is "no repair".
  EXPECT_TRUE(SegmentWord(t, "2004").empty());
}

}  // namespace
}  // namespace cqads::trie
