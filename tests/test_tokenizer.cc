#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include "text/stopwords.h"

namespace cqads::text {
namespace {

std::vector<std::string> Texts(const TokenList& toks) {
  std::vector<std::string> out;
  for (const auto& t : toks) out.push_back(t.text);
  return out;
}

TEST(TokenizerTest, LowercasesWords) {
  EXPECT_EQ(Texts(Tokenize("Honda ACCORD")),
            (std::vector<std::string>{"honda", "accord"}));
}

TEST(TokenizerTest, DropsPunctuation) {
  EXPECT_EQ(Texts(Tokenize("Do you have a 2 door, red BMW?")),
            (std::vector<std::string>{"do", "you", "have", "a", "2", "door",
                                      "red", "bmw"}));
}

TEST(TokenizerTest, MoneyTokenStripsDollarAndSetsFlag) {
  auto toks = Tokenize("under $5,000 today");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "5000");
  EXPECT_TRUE(toks[1].has_dollar);
  EXPECT_EQ(toks[1].kind, TokenKind::kNumber);
}

TEST(TokenizerTest, BareDollarSignIgnored) {
  EXPECT_EQ(Texts(Tokenize("pay in $ now")),
            (std::vector<std::string>{"pay", "in", "now"}));
}

TEST(TokenizerTest, ThousandsCommaInsideNumber) {
  auto toks = Tokenize("15,000 miles");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "15000");
}

TEST(TokenizerTest, CommaBetweenWordsSeparates) {
  EXPECT_EQ(Texts(Tokenize("focus,corolla,civic")),
            (std::vector<std::string>{"focus", "corolla", "civic"}));
}

TEST(TokenizerTest, DecimalPointKept) {
  auto toks = Tokenize("3.5 carat");
  EXPECT_EQ(toks[0].text, "3.5");
  EXPECT_EQ(toks[0].kind, TokenKind::kNumber);
}

TEST(TokenizerTest, TrailingPeriodNotPartOfNumber) {
  auto toks = Tokenize("price is 5000.");
  EXPECT_EQ(toks.back().text, "5000");
}

TEST(TokenizerTest, HyphenSplits) {
  EXPECT_EQ(Texts(Tokenize("4-door sedan")),
            (std::vector<std::string>{"4", "door", "sedan"}));
}

TEST(TokenizerTest, SlashSplits) {
  EXPECT_EQ(Texts(Tokenize("automatic/manual")),
            (std::vector<std::string>{"automatic", "manual"}));
}

TEST(TokenizerTest, MixedAlnumStaysWhole) {
  auto toks = Tokenize("2dr mazda 20k");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "2dr");
  EXPECT_EQ(toks[0].kind, TokenKind::kMixed);
  EXPECT_EQ(toks[2].text, "20k");
  EXPECT_EQ(toks[2].kind, TokenKind::kMixed);
}

TEST(TokenizerTest, CppAndCSharpSurvive) {
  auto toks = Tokenize("c++ or c# job");
  EXPECT_EQ(toks[0].text, "c++");
  EXPECT_EQ(toks[1].text, "or");
  EXPECT_EQ(toks[2].text, "c#");
}

TEST(TokenizerTest, OffsetsPointIntoSource) {
  std::string src = "red  BMW";
  auto toks = Tokenize(src);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 5u);
  EXPECT_EQ(src.substr(toks[1].offset, 3), "BMW");
}

TEST(TokenizerTest, MoneyOffsetIncludesDollar) {
  auto toks = Tokenize("x $900");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1].offset, 2u);
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  \t ?!").empty());
}

TEST(TokenizerTest, JoinTokensRoundTripCanonical) {
  EXPECT_EQ(JoinTokens(Tokenize("Red, 4-door BMW!")), "red 4 door bmw");
}

TEST(StopwordsTest, CommonFunctionWords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("looking"));
  EXPECT_TRUE(IsStopword("want"));
}

TEST(StopwordsTest, OperatorWordsAreNotStopwords) {
  // These carry Table 1 semantics and must survive to the tagger.
  for (const char* w : {"less", "than", "more", "above", "under", "between",
                        "not", "no", "without", "except", "or", "and",
                        "within", "cheapest", "newest"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ContentWordsAreNotStopwords) {
  for (const char* w : {"honda", "blue", "price", "door", "engineer"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, CountIsStable) {
  EXPECT_GT(StopwordCount(), 100u);
}

}  // namespace
}  // namespace cqads::text
