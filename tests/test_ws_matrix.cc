#include "wordsim/ws_matrix.h"

#include <gtest/gtest.h>

namespace cqads::wordsim {
namespace {

std::vector<std::string> ColorCorpus() {
  // "black" and "grey" co-occur adjacently; "red" appears far away in the
  // same documents; filler words separate sections.
  std::vector<std::string> corpus;
  for (int i = 0; i < 6; ++i) {
    corpus.push_back(
        "black grey exterior excellent condition garage kept clean original "
        "owner quality deal warranty included red maroon paint");
  }
  return corpus;
}

TEST(WsMatrixTest, AdjacentWordsMoreSimilarThanDistant) {
  WsMatrix m = WsMatrix::Build(ColorCorpus());
  EXPECT_GT(m.Sim("black", "grey"), m.Sim("black", "red"));
}

TEST(WsMatrixTest, IdenticalStemsScoreOne) {
  WsMatrix m = WsMatrix::Build(ColorCorpus());
  EXPECT_DOUBLE_EQ(m.Sim("black", "black"), 1.0);
  EXPECT_DOUBLE_EQ(m.Sim("owner", "owners"), 1.0);  // same stem
}

TEST(WsMatrixTest, UnknownPairIsZero) {
  WsMatrix m = WsMatrix::Build(ColorCorpus());
  EXPECT_DOUBLE_EQ(m.Sim("black", "zebra"), 0.0);
}

TEST(WsMatrixTest, SymmetricLookup) {
  WsMatrix m = WsMatrix::Build(ColorCorpus());
  EXPECT_DOUBLE_EQ(m.Sim("black", "grey"), m.Sim("grey", "black"));
}

TEST(WsMatrixTest, MinDocFreqPrunesRareWords) {
  std::vector<std::string> corpus = ColorCorpus();
  corpus.push_back("unicorn black");  // "unicorn" appears in one doc only
  WsOptions opts;
  opts.min_doc_freq = 2;
  WsMatrix m = WsMatrix::Build(corpus, opts);
  EXPECT_DOUBLE_EQ(m.Sim("unicorn", "black"), 0.0);
}

TEST(WsMatrixTest, WindowLimitsCooccurrence) {
  // With a window of 2, words 12 fillers apart never pair up.
  WsOptions opts;
  opts.window = 2;
  WsMatrix m = WsMatrix::Build(ColorCorpus(), opts);
  EXPECT_DOUBLE_EQ(m.Sim("black", "maroon"), 0.0);
  EXPECT_GT(m.Sim("black", "grey"), 0.0);
}

TEST(WsMatrixTest, StopwordsExcludedFromVocabulary) {
  std::vector<std::string> corpus = {
      "the black the grey the", "the black the grey the"};
  WsMatrix m = WsMatrix::Build(corpus);
  EXPECT_DOUBLE_EQ(m.Sim("the", "black"), 0.0);
  EXPECT_GT(m.Sim("black", "grey"), 0.0);
}

TEST(WsMatrixTest, SimilaritiesBounded) {
  WsMatrix m = WsMatrix::Build(ColorCorpus());
  EXPECT_GT(m.MaxSim(), 0.0);
  EXPECT_LE(m.MaxSim(), 1.0);
}

TEST(WsMatrixTest, MostSimilarOrdering) {
  WsMatrix m = WsMatrix::Build(ColorCorpus());
  auto top = m.MostSimilar("black", 5);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, "grei");  // Porter stem of "grey"
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
}

TEST(WsMatrixTest, EmptyCorpus) {
  WsMatrix m = WsMatrix::Build({});
  EXPECT_EQ(m.vocabulary_size(), 0u);
  EXPECT_DOUBLE_EQ(m.MaxSim(), 0.0);
}

}  // namespace
}  // namespace cqads::wordsim
