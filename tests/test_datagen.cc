#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/ads_generator.h"
#include "datagen/corpus_gen.h"
#include "datagen/domain_spec.h"
#include "datagen/question_gen.h"
#include "db/executor.h"

namespace cqads::datagen {
namespace {

// ------------------------------------------------------------- specs

class DomainSpecTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DomainSpecTest, SchemaValidates) {
  const DomainSpec* spec = FindDomainSpec(GetParam());
  ASSERT_NE(spec, nullptr);
  EXPECT_TRUE(spec->schema.Validate().ok());
}

TEST_P(DomainSpecTest, IdentitiesAlignWithTypeIAttrs) {
  const DomainSpec* spec = FindDomainSpec(GetParam());
  ASSERT_NE(spec, nullptr);
  ASSERT_FALSE(spec->identities.empty());
  for (const auto& id : spec->identities) {
    EXPECT_EQ(id.values.size(), spec->type_i_attrs.size());
    EXPECT_GE(id.cluster, 0);
    EXPECT_GT(id.weight, 0.0);
    for (const auto& v : id.values) EXPECT_FALSE(v.empty());
  }
}

TEST_P(DomainSpecTest, PoolGroupsCoverTypeIIAttrs) {
  const DomainSpec* spec = FindDomainSpec(GetParam());
  ASSERT_NE(spec, nullptr);
  for (const auto& [attr, groups] : spec->pool_groups) {
    ASSERT_LT(attr, spec->schema.num_attributes());
    EXPECT_NE(spec->schema.attribute(attr).data_kind,
              db::DataKind::kNumeric);
    for (const auto& g : groups) EXPECT_FALSE(g.empty());
  }
}

TEST_P(DomainSpecTest, NumericsHaveSaneRanges) {
  const DomainSpec* spec = FindDomainSpec(GetParam());
  ASSERT_NE(spec, nullptr);
  EXPECT_FALSE(spec->numerics.empty());
  for (const auto& [attr, gen] : spec->numerics) {
    EXPECT_EQ(spec->schema.attribute(attr).data_kind, db::DataKind::kNumeric);
    EXPECT_LT(gen.min, gen.max);
  }
}

TEST_P(DomainSpecTest, GroupLookupConsistent) {
  const DomainSpec* spec = FindDomainSpec(GetParam());
  ASSERT_NE(spec, nullptr);
  for (const auto& [attr, groups] : spec->pool_groups) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (const auto& value : groups[g]) {
        EXPECT_EQ(spec->GroupOf(attr, value), static_cast<int>(g));
      }
    }
  }
  EXPECT_EQ(spec->GroupOf(0, "definitely not a value"), -1);
}

TEST_P(DomainSpecTest, ClusterLookup) {
  const DomainSpec* spec = FindDomainSpec(GetParam());
  ASSERT_NE(spec, nullptr);
  const auto& id = spec->identities.front();
  EXPECT_EQ(spec->ClusterOf(id.values), id.cluster);
  EXPECT_EQ(spec->ClusterOf({"zzz"}), -1);
}

INSTANTIATE_TEST_SUITE_P(
    AllEight, DomainSpecTest,
    ::testing::Values("cars", "motorcycles", "clothing", "cs_jobs",
                      "furniture", "food_coupons", "instruments",
                      "jewellery"));

TEST(DomainSpecsTest, ExactlyEightDomains) {
  EXPECT_EQ(AllDomainSpecs().size(), 8u);
  EXPECT_EQ(FindDomainSpec("boats"), nullptr);
}

// ------------------------------------------------------------- ads gen

TEST(AdsGeneratorTest, GeneratesRequestedCount) {
  Rng rng(1);
  auto table = GenerateAds(*FindDomainSpec("cars"), 200, &rng);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().num_rows(), 200u);
  EXPECT_TRUE(table.value().indexes_built());
}

TEST(AdsGeneratorTest, Deterministic) {
  Rng a(5), b(5);
  auto ta = GenerateAds(*FindDomainSpec("jewellery"), 50, &a);
  auto tb = GenerateAds(*FindDomainSpec("jewellery"), 50, &b);
  ASSERT_TRUE(ta.ok() && tb.ok());
  for (db::RowId r = 0; r < 50; ++r) {
    EXPECT_EQ(ta.value().RowText(r), tb.value().RowText(r));
  }
}

TEST(AdsGeneratorTest, ValuesComeFromPools) {
  Rng rng(2);
  const DomainSpec& spec = *FindDomainSpec("cars");
  auto table = GenerateAds(spec, 150, &rng);
  ASSERT_TRUE(table.ok());
  auto colors = spec.PoolValues(5);
  for (db::RowId r = 0; r < table.value().num_rows(); ++r) {
    const auto& color = table.value().cell(r, 5).text();
    EXPECT_NE(std::find(colors.begin(), colors.end(), color), colors.end())
        << color;
  }
}

TEST(AdsGeneratorTest, NumericsInRange) {
  Rng rng(3);
  const DomainSpec& spec = *FindDomainSpec("cars");
  auto table = GenerateAds(spec, 150, &rng);
  ASSERT_TRUE(table.ok());
  for (db::RowId r = 0; r < table.value().num_rows(); ++r) {
    double year = table.value().cell(r, 2).AsDouble();
    EXPECT_GE(year, 1988);
    EXPECT_LE(year, 2011);
    double price = table.value().cell(r, 3).AsDouble();
    EXPECT_GE(price, 700);
    EXPECT_LE(price, 90000);
  }
}

TEST(AdsGeneratorTest, ClusterScalingShiftsPrices) {
  Rng rng(4);
  const DomainSpec& spec = *FindDomainSpec("cars");
  auto table = GenerateAds(spec, 500, &rng);
  ASSERT_TRUE(table.ok());
  double luxury_sum = 0, economy_sum = 0;
  int luxury_n = 0, economy_n = 0;
  for (db::RowId r = 0; r < table.value().num_rows(); ++r) {
    const auto& make = table.value().cell(r, 0).text();
    double price = table.value().cell(r, 3).AsDouble();
    if (make == "bmw" || make == "mercedes" || make == "audi") {
      luxury_sum += price;
      ++luxury_n;
    } else if (make == "toyota" || make == "honda") {
      economy_sum += price;
      ++economy_n;
    }
  }
  ASSERT_GT(luxury_n, 0);
  ASSERT_GT(economy_n, 0);
  EXPECT_GT(luxury_sum / luxury_n, economy_sum / economy_n);
}

TEST(AdsGeneratorTest, FeatureListsHaveMultipleElements) {
  Rng rng(5);
  const DomainSpec& spec = *FindDomainSpec("cars");
  auto table = GenerateAds(spec, 50, &rng);
  ASSERT_TRUE(table.ok());
  for (db::RowId r = 0; r < table.value().num_rows(); ++r) {
    EXPECT_GE(table.value().CellElements(r, 9).size(), 3u);
  }
}

// ------------------------------------------------------------- corpus

TEST(CorpusGenTest, ProducesDocsPerDomain) {
  Rng rng(6);
  auto corpus = GenerateCorpus({*FindDomainSpec("cars")}, 20, &rng);
  EXPECT_EQ(corpus.size(), 20u);
  for (const auto& doc : corpus) EXPECT_FALSE(doc.empty());
}

// ------------------------------------------------------------- questions

class QuestionGenTest : public ::testing::Test {
 protected:
  QuestionGenTest() {
    Rng rng(7);
    spec_ = FindDomainSpec("cars");
    auto t = GenerateAds(*spec_, 300, &rng);
    table_ = std::make_unique<db::Table>(std::move(t).value());
  }
  const DomainSpec* spec_;
  std::unique_ptr<db::Table> table_;
};

TEST_F(QuestionGenTest, GeneratesRequestedCount) {
  Rng rng(8);
  auto qs = GenerateQuestions(*spec_, *table_, 80, QuestionGenOptions(), &rng);
  EXPECT_EQ(qs.size(), 80u);
}

TEST_F(QuestionGenTest, AllQuestionsHaveTextAndIntent) {
  Rng rng(9);
  auto qs = GenerateQuestions(*spec_, *table_, 100, QuestionGenOptions(), &rng);
  for (const auto& q : qs) {
    EXPECT_FALSE(q.text.empty());
    EXPECT_FALSE(q.segments.empty());
    EXPECT_EQ(q.domain, "cars");
    EXPECT_TRUE(q.oracle.where != nullptr);
  }
}

TEST_F(QuestionGenTest, OracleQueriesExecutable) {
  Rng rng(10);
  auto qs = GenerateQuestions(*spec_, *table_, 60, QuestionGenOptions(), &rng);
  db::Executor exec(table_.get());
  for (const auto& q : qs) {
    EXPECT_TRUE(exec.Execute(q.oracle).ok()) << q.text;
  }
}

TEST_F(QuestionGenTest, BooleanMixApproximatesKnob) {
  Rng rng(11);
  QuestionGenOptions opts;
  opts.p_boolean = 0.2;
  auto qs = GenerateQuestions(*spec_, *table_, 600, opts, &rng);
  std::size_t booleans = 0, explicits = 0;
  for (const auto& q : qs) {
    if (q.is_boolean) ++booleans;
    if (q.is_explicit_boolean) ++explicits;
  }
  EXPECT_NEAR(booleans / 600.0, 0.2, 0.06);
  EXPECT_LT(explicits, booleans);
}

TEST_F(QuestionGenTest, PerturbationFlagsReflectText) {
  Rng rng(12);
  QuestionGenOptions opts;
  opts.p_misspell = 0.5;
  opts.p_shorthand = 0.5;
  auto qs = GenerateQuestions(*spec_, *table_, 200, opts, &rng);
  std::size_t misspelled = 0, shorthand = 0;
  for (const auto& q : qs) {
    if (q.has_misspelling) ++misspelled;
    if (q.has_shorthand) ++shorthand;
  }
  EXPECT_GT(misspelled, 20u);
  EXPECT_GT(shorthand, 10u);
}

TEST_F(QuestionGenTest, NegationQuestionsCarryNegatedUnits) {
  Rng rng(13);
  QuestionGenOptions opts;
  opts.p_boolean = 1.0;
  auto qs = GenerateQuestions(*spec_, *table_, 150, opts, &rng);
  bool saw_negated = false;
  for (const auto& q : qs) {
    if (!q.has_negation) continue;
    for (const auto& seg : q.segments) {
      for (const auto& u : seg) {
        if (u.negated) saw_negated = true;
      }
    }
  }
  EXPECT_TRUE(saw_negated);
}

TEST_F(QuestionGenTest, Deterministic) {
  Rng a(14), b(14);
  auto qa = GenerateQuestions(*spec_, *table_, 40, QuestionGenOptions(), &a);
  auto qb = GenerateQuestions(*spec_, *table_, 40, QuestionGenOptions(), &b);
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa[i].text, qb[i].text);
    EXPECT_EQ(qa[i].oracle_interpretation, qb[i].oracle_interpretation);
  }
}

TEST_F(QuestionGenTest, SuperlativeQuestionsCarrySuperlative) {
  Rng rng(15);
  QuestionGenOptions opts;
  opts.p_superlative = 1.0;
  opts.p_boolean = 0.0;
  auto qs = GenerateQuestions(*spec_, *table_, 50, opts, &rng);
  std::size_t supers = 0;
  for (const auto& q : qs) {
    if (q.has_superlative) {
      ++supers;
      EXPECT_TRUE(q.superlative.has_value());
      EXPECT_TRUE(q.oracle.superlative.has_value());
    }
  }
  EXPECT_GT(supers, 40u);
}

TEST(IntentToExprTest, SegmentsOrUnitsAnd) {
  IntentUnit a;
  a.kind = IntentUnit::Kind::kTypeII;
  a.attr = 5;
  a.values = {"blue"};
  IntentUnit b = a;
  b.values = {"red"};
  auto expr = IntentToExpr({{a}, {b}});
  ASSERT_TRUE(expr != nullptr);
  EXPECT_EQ(expr->kind(), db::Expr::Kind::kOr);
  EXPECT_EQ(IntentToExpr({}), nullptr);
}

}  // namespace
}  // namespace cqads::datagen
