#include "common/status.h"

#include <gtest/gtest.h>

namespace cqads {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing domain");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing domain");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing domain");
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "ALREADY_EXISTS");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, OkStatusDowngradedToInternal) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Status::OutOfRange("nope"); }
Status Propagates() {
  CQADS_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace cqads
