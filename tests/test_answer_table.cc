#include "core/answer_table.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace cqads::core {
namespace {

class AnswerTableTest : public ::testing::Test {
 protected:
  AnswerTableTest() : table_(cqads::testing::MiniCarTable()) {
    EXPECT_TRUE(engine_.AddDomain(&table_, qlog::TiMatrix()).ok());
  }
  db::Table table_;
  CqadsEngine engine_;
};

TEST_F(AnswerTableTest, TextTableHasHeaderAndRows) {
  auto result = engine_.AskInDomain("cars", "blue honda accord");
  ASSERT_TRUE(result.ok());
  std::string text = FormatAnswersText(table_, result.value());
  EXPECT_NE(text.find("match"), std::string::npos);
  EXPECT_NE(text.find("make"), std::string::npos);
  EXPECT_NE(text.find("exact"), std::string::npos);
  EXPECT_NE(text.find("honda"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST_F(AnswerTableTest, MaxRowsTruncatesWithEllipsis) {
  auto result = engine_.AskInDomain("cars", "cheapest");
  ASSERT_TRUE(result.ok());
  AnswerTableOptions opts;
  opts.max_rows = 2;
  std::string text = FormatAnswersText(table_, result.value(), opts);
  EXPECT_NE(text.find("... "), std::string::npos);
  EXPECT_NE(text.find(" more"), std::string::npos);
}

TEST_F(AnswerTableTest, PartialRowsShowMeasure) {
  auto result = engine_.AskInDomain(
      "cars", "honda accord blue less than 15000 dollars");
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result.value().answers.size(), result.value().exact_count);
  std::string text = FormatAnswersText(table_, result.value());
  EXPECT_NE(text.find("partial"), std::string::npos);
  EXPECT_NE(text.find("Num_Sim on Price"), std::string::npos);
}

TEST_F(AnswerTableTest, ContradictionMessage) {
  auto result = engine_.AskInDomain(
      "cars", "accord price below 2000 and price above 9000");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(FormatAnswersText(table_, result.value()),
            "search retrieved no results\n");
  EXPECT_EQ(FormatAnswersHtml(table_, result.value()),
            "<p>search retrieved no results</p>\n");
}

TEST_F(AnswerTableTest, HtmlTableWellFormed) {
  auto result = engine_.AskInDomain("cars", "blue honda accord");
  ASSERT_TRUE(result.ok());
  std::string html = FormatAnswersHtml(table_, result.value());
  EXPECT_EQ(html.find("<table>"), 0u);
  EXPECT_NE(html.find("</table>"), std::string::npos);
  // Tag balance.
  auto count = [&](const char* needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = html.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += 1;
    }
    return n;
  };
  EXPECT_EQ(count("<tr>"), count("</tr>"));
  EXPECT_EQ(count("<td>"), count("</td>"));
  EXPECT_EQ(count("<th>"), count("</th>"));
}

TEST(HtmlEscapeTest, EscapesSpecials) {
  EXPECT_EQ(HtmlEscape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(HtmlEscape("plain"), "plain");
}

TEST_F(AnswerTableTest, MaxAttributesLimitsColumns) {
  auto result = engine_.AskInDomain("cars", "blue honda accord");
  ASSERT_TRUE(result.ok());
  AnswerTableOptions opts;
  opts.max_attributes = 2;
  std::string text = FormatAnswersText(table_, result.value(), opts);
  EXPECT_NE(text.find("model"), std::string::npos);
  EXPECT_EQ(text.find("features"), std::string::npos);
}

TEST_F(AnswerTableTest, RankSimColumnOptional) {
  auto result = engine_.AskInDomain("cars", "blue honda accord");
  ASSERT_TRUE(result.ok());
  AnswerTableOptions opts;
  opts.show_rank_sim = false;
  std::string text = FormatAnswersText(table_, result.value(), opts);
  EXPECT_EQ(text.find("rank_sim"), std::string::npos);
}

}  // namespace
}  // namespace cqads::core
