// The vectorized execution path: every SIMD selection kernel differentially
// tested against the scalar oracle on adversarial inputs (all-null columns,
// kNullCode runs, non-multiple-of-64 tails, empty selections, single-row
// tables), LazyRowSet algebra vs sorted-vector set semantics, plan-level
// vectorize-on/off row-set identity, SimScorer::ScoreBlock vs per-row
// Score, and engine-level byte-parity of the whole ask path with
// use_vector_kernels on vs off across all eight datagen domains.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "common/rng.h"
#include "core/pipeline.h"
#include "core/rank_sim.h"
#include "datagen/domain_spec.h"
#include "datagen/question_gen.h"
#include "datagen/world.h"
#include "db/exec/plan.h"
#include "db/exec/rowset_ops.h"
#include "db/exec/vector_kernels.h"
#include "db/storage/column_store.h"

namespace cqads {
namespace {

using db::CompareOp;
using db::ColumnStore;
using db::RowId;
using db::RowSet;
using db::exec::CodeEqMask;
using db::exec::CodeTableMask;
using db::exec::EmitRows;
using db::exec::kBlockRows;
using db::exec::LazyRowSet;
using db::exec::NumericCompareMask;
using db::exec::RowBitmap;
using db::exec::SelMask;
using db::exec::SimdLevel;

// Every dispatch tier this build + CPU can actually run (SetSimdOverride
// clamps requests above the CPU's capability, so asking for each tier and
// reading back what stuck enumerates them). Always contains kScalar.
std::vector<SimdLevel> TestableLevels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel want :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
    db::exec::SetSimdOverride(want);
    if (db::exec::ActiveSimdLevel() == want) levels.push_back(want);
  }
  db::exec::ClearSimdOverride();
  return levels;
}

const char* LevelName(SimdLevel l) {
  switch (l) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "?";
}

bool MaskBit(const SelMask& mask, std::size_t i) {
  return (mask.words[i / 64] >> (i % 64)) & 1u;
}

// The row-wise contract each kernel must implement, restated independently
// of the kernel code (db/compare.h's null rule: only kNe matches NULL).
bool OracleNumeric(double v, bool is_null, CompareOp op, double lo,
                   double hi) {
  if (is_null) return op == CompareOp::kNe;
  switch (op) {
    case CompareOp::kEq:
      return v == lo;
    case CompareOp::kNe:
      return v != lo;
    case CompareOp::kLt:
      return v < lo;
    case CompareOp::kLe:
      return v <= lo;
    case CompareOp::kGt:
      return v > lo;
    case CompareOp::kGe:
      return v >= lo;
    case CompareOp::kBetween:
      return v >= lo && v <= hi;
    case CompareOp::kContains:
      return false;
  }
  return false;
}

TEST(SimdDispatchTest, OverrideClampsAndRestores) {
  const SimdLevel detected = db::exec::ActiveSimdLevel();
  db::exec::SetSimdOverride(SimdLevel::kScalar);
  EXPECT_EQ(db::exec::ActiveSimdLevel(), SimdLevel::kScalar);
  // Requests above the CPU's capability clamp to what it can run.
  db::exec::SetSimdOverride(SimdLevel::kAvx2);
  EXPECT_LE(static_cast<int>(detected),
            static_cast<int>(db::exec::ActiveSimdLevel()));
  db::exec::ClearSimdOverride();
  EXPECT_EQ(db::exec::ActiveSimdLevel(), detected);
}

// Block sizes that exercise empty selections, single rows, word
// boundaries, sub-word tails, and full blocks.
const std::size_t kAdversarialSizes[] = {0, 1, 2, 63, 64, 65, 127,
                                         128, 500, 1000, 1023, 1024};

TEST(NumericCompareMaskTest, AllTiersMatchOracle) {
  std::mt19937_64 rng(20260808);
  const double kInf = std::numeric_limits<double>::infinity();
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  // Small value pool so equality boundaries actually fire.
  const double pool[] = {-kInf, -7.5, -0.0, 0.0,  1.0,
                         2.5,   7.5,  42.0, kInf, 5e-324};
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe,
                           CompareOp::kBetween, CompareOp::kContains};

  for (SimdLevel level : TestableLevels()) {
    db::exec::SetSimdOverride(level);
    for (std::size_t n : kAdversarialSizes) {
      // Three null shapes: no-null (bitmap pointer omitted), mixed,
      // all-null.
      for (int shape = 0; shape < 3; ++shape) {
        std::vector<double> packed(n, 0.0);
        std::vector<std::uint64_t> nulls((n + 63) / 64, 0);
        std::vector<bool> is_null(n, false);
        for (std::size_t i = 0; i < n; ++i) {
          const bool null_row =
              shape == 2 || (shape == 1 && rng() % 4 == 0);
          if (null_row) {
            is_null[i] = true;
            nulls[i / 64] |= std::uint64_t{1} << (i % 64);
            packed[i] = kNan;
          } else {
            packed[i] = pool[rng() % (sizeof(pool) / sizeof(pool[0]))];
          }
        }
        for (CompareOp op : ops) {
          const double lo = pool[rng() % (sizeof(pool) / sizeof(pool[0]))];
          const double hi = lo + 5.0;
          SelMask mask;
          NumericCompareMask(packed.data(),
                             shape == 0 ? nullptr : nulls.data(), op, lo, hi,
                             /*base=*/0, n, &mask);
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(MaskBit(mask, i),
                      OracleNumeric(packed[i], is_null[i], op, lo, hi))
                << LevelName(level) << " n=" << n << " shape=" << shape
                << " op=" << static_cast<int>(op) << " row=" << i
                << " v=" << packed[i];
          }
          for (std::size_t i = n; i < kBlockRows; ++i) {
            ASSERT_FALSE(MaskBit(mask, i)) << "tail bit " << i << " set";
          }
        }
      }
    }
  }
  db::exec::ClearSimdOverride();
}

TEST(CodeEqMaskTest, AllTiersMatchOracle) {
  std::mt19937_64 rng(424243);
  for (SimdLevel level : TestableLevels()) {
    db::exec::SetSimdOverride(level);
    for (std::size_t n : kAdversarialSizes) {
      for (int shape = 0; shape < 3; ++shape) {
        std::vector<std::uint32_t> codes(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
          if (shape == 2 || (shape == 1 && rng() % 3 == 0)) {
            codes[i] = ColumnStore::kNullCode;  // runs of NULL under shape 2
          } else {
            codes[i] = static_cast<std::uint32_t>(rng() % 5);
          }
        }
        const std::uint32_t target = static_cast<std::uint32_t>(rng() % 5);
        for (bool negate : {false, true}) {
          for (bool null_matches : {false, true}) {
            SelMask mask;
            CodeEqMask(codes.data(), target, negate, null_matches,
                       /*base=*/0, n, &mask);
            for (std::size_t i = 0; i < n; ++i) {
              const bool expect =
                  codes[i] == ColumnStore::kNullCode
                      ? null_matches
                      : (codes[i] == target) != negate;
              ASSERT_EQ(MaskBit(mask, i), expect)
                  << LevelName(level) << " n=" << n << " row=" << i;
            }
            for (std::size_t i = n; i < kBlockRows; ++i) {
              ASSERT_FALSE(MaskBit(mask, i));
            }
          }
        }
      }
    }
  }
  db::exec::ClearSimdOverride();
}

TEST(CodeTableMaskTest, MatchesOracleIncludingOutOfTableCodes) {
  std::mt19937_64 rng(7);
  for (SimdLevel level : TestableLevels()) {
    db::exec::SetSimdOverride(level);
    for (std::size_t n : kAdversarialSizes) {
      const std::uint32_t table_size = 6;
      std::vector<std::uint8_t> table(table_size);
      for (auto& b : table) b = rng() % 2;
      std::vector<std::uint32_t> codes(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        const auto r = rng() % 10;
        // Codes beyond table_size (a fresher dictionary than the table)
        // must test as no-match before negation.
        codes[i] = r < 2 ? ColumnStore::kNullCode
                         : static_cast<std::uint32_t>(rng() % (table_size + 3));
      }
      for (bool negate : {false, true}) {
        for (bool null_matches : {false, true}) {
          SelMask mask;
          CodeTableMask(codes.data(), table.data(), table_size, negate,
                        null_matches, /*base=*/0, n, &mask);
          for (std::size_t i = 0; i < n; ++i) {
            const bool hit =
                codes[i] < table_size && table[codes[i]] != 0;
            const bool expect = codes[i] == ColumnStore::kNullCode
                                    ? null_matches
                                    : hit != negate;
            ASSERT_EQ(MaskBit(mask, i), expect)
                << LevelName(level) << " n=" << n << " row=" << i;
          }
        }
      }
    }
  }
  db::exec::ClearSimdOverride();
}

TEST(EmitRowsTest, AscendingAndComplete) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    SelMask mask;
    mask.Clear();
    RowSet expect;
    const RowId base = static_cast<RowId>((rng() % 4) * kBlockRows);
    for (std::size_t i = 0; i < kBlockRows; ++i) {
      if (rng() % 5 == 0) {
        mask.words[i / 64] |= std::uint64_t{1} << (i % 64);
        expect.push_back(base + static_cast<RowId>(i));
      }
    }
    RowSet out;
    EXPECT_EQ(EmitRows(mask, base, &out), expect.size());
    EXPECT_EQ(out, expect);
    EXPECT_EQ(mask.Count(), expect.size());
    EXPECT_EQ(mask.AnySet(), !expect.empty());
  }
  SelMask empty;
  empty.Clear();
  RowSet out;
  EXPECT_EQ(EmitRows(empty, 0, &out), 0u);
  EXPECT_TRUE(out.empty());
}

// ---- LazyRowSet: bitmap/vector algebra == sorted-set semantics ------------

RowSet RandomSubset(std::mt19937_64& rng, std::size_t universe,
                    std::size_t density_divisor) {
  RowSet out;
  if (density_divisor == 0) return out;
  for (RowId r = 0; r < universe; ++r) {
    if (rng() % density_divisor == 0) out.push_back(r);
  }
  return out;
}

LazyRowSet MakeLazy(const RowSet& rows, std::size_t universe, bool dense) {
  if (dense) {
    return LazyRowSet::FromBitmap(RowBitmap::FromSet(rows, universe));
  }
  return LazyRowSet::FromRows(rows);
}

TEST(LazyRowSetTest, AlgebraMatchesSetSemanticsInEveryRepresentation) {
  std::mt19937_64 rng(4242);
  for (std::size_t universe : {std::size_t{1}, std::size_t{64},
                               std::size_t{100}, std::size_t{3000}}) {
    // Densities from near-empty to near-full so both the sparse merge and
    // the word-parallel path run, whatever representation came in.
    for (std::size_t div_a : {std::size_t{1}, std::size_t{2}, std::size_t{50},
                              std::size_t{0}}) {
      for (std::size_t div_b :
           {std::size_t{1}, std::size_t{3}, std::size_t{80}}) {
        const RowSet a = RandomSubset(rng, universe, div_a);
        const RowSet b = RandomSubset(rng, universe, div_b);
        const RowSet want_and = db::exec::IntersectSets(a, b, universe);
        const RowSet want_or = db::exec::UnionSets(a, b, universe);
        RowSet all(universe);
        for (RowId r = 0; r < universe; ++r) all[r] = r;
        const RowSet want_not = db::exec::DifferenceSets(all, a, universe);

        for (bool dense_a : {false, true}) {
          for (bool dense_b : {false, true}) {
            LazyRowSet x = MakeLazy(a, universe, dense_a);
            x.IntersectWith(MakeLazy(b, universe, dense_b), universe);
            EXPECT_EQ(x.Count(), want_and.size());
            EXPECT_EQ(std::move(x).ToRows(), want_and)
                << universe << " " << dense_a << dense_b;

            LazyRowSet y = MakeLazy(a, universe, dense_a);
            y.UnionWith(MakeLazy(b, universe, dense_b), universe);
            EXPECT_EQ(std::move(y).ToRows(), want_or)
                << universe << " " << dense_a << dense_b;
          }
          LazyRowSet z = MakeLazy(a, universe, dense_a);
          z.ComplementWithin(universe);
          EXPECT_EQ(std::move(z).ToRows(), want_not)
              << universe << " " << dense_a;
        }
      }
    }
  }
}

// ---- world-backed differentials -------------------------------------------

class VectorParityTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 20111130;
    options.ads_per_domain = 120;
    options.sessions_per_domain = 200;
    options.corpus_docs_per_domain = 40;
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static datagen::World* world_;
};

datagen::World* VectorParityTest::world_ = nullptr;

// Plan-level: the lazy block-at-a-time evaluation of every compiled plan
// (main + each N-1 relaxation) returns the exact row set of the scalar
// reference execution.
TEST_P(VectorParityTest, PlansReturnIdenticalRowSetsVectorizedOrNot) {
  const std::string& domain = GetParam();
  const auto* spec = world_->spec(domain);
  ASSERT_NE(spec, nullptr);
  Rng rng(555);
  auto questions = datagen::GenerateQuestions(
      *spec, *world_->table(domain), 60, datagen::QuestionGenOptions(), &rng);

  std::size_t plans_checked = 0;
  for (const auto& q : questions) {
    auto parsed = world_->engine().Parse(domain, q.text);
    if (!parsed.ok()) continue;
    std::vector<db::exec::PlanPtr> plans;
    plans.push_back(parsed.value().plan);
    for (const auto& rp : parsed.value().relaxed_plans) plans.push_back(rp);
    for (const auto& plan : plans) {
      if (plan == nullptr) continue;
      db::ExecStats vec_stats, scalar_stats;
      auto vec = plan->ExecuteRowSet(&vec_stats, /*vectorize=*/true);
      auto scalar = plan->ExecuteRowSet(&scalar_stats, /*vectorize=*/false);
      ASSERT_EQ(vec.ok(), scalar.ok()) << domain << " '" << q.text << "'";
      if (!vec.ok()) continue;
      ASSERT_EQ(vec.value(), scalar.value()) << domain << " '" << q.text << "'";
      ++plans_checked;
    }
  }
  EXPECT_GT(plans_checked, 0u) << domain;
}

// Scoring-level: ScoreBlock's code-tuple memo path equals per-row Score.
TEST_P(VectorParityTest, ScoreBlockMatchesPerRowScore) {
  const std::string& domain = GetParam();
  const auto snapshot = world_->engine().snapshot();
  const auto* rt = snapshot->runtime(domain);
  ASSERT_NE(rt, nullptr);
  const auto* spec = world_->spec(domain);

  Rng rng(777);
  auto questions = datagen::GenerateQuestions(
      *spec, *world_->table(domain), 30, datagen::QuestionGenOptions(), &rng);

  const core::SimilarityContext sim = snapshot->MakeSimilarityContext(*rt);
  for (const auto& q : questions) {
    auto parsed = world_->engine().Parse(domain, q.text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const auto& units = parsed.value().assembled.units;
    if (units.empty()) continue;

    core::SimScorer scorer(rt->table->schema(), units, sim);
    std::vector<RowId> rows;
    for (RowId row = 0; row < rt->table->num_rows(); row += 3) {
      rows.push_back(row);
    }
    std::vector<double> rank(rows.size()), unit(rows.size());
    for (std::size_t dropped = 0; dropped < units.size(); ++dropped) {
      scorer.ScoreBlock(*rt->table, rows.data(), rows.size(), dropped,
                        rank.data(), unit.data());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const core::PartialScore one =
            scorer.Score(*rt->table, rows[i], dropped);
        ASSERT_DOUBLE_EQ(rank[i], one.rank_sim)
            << domain << " '" << q.text << "' row " << rows[i];
        ASSERT_DOUBLE_EQ(unit[i], one.unit_sim)
            << domain << " '" << q.text << "' row " << rows[i];
        ASSERT_EQ(scorer.unit_measure(dropped), one.measure);
      }
    }
  }
}

// Engine-level: the whole ask path answers byte-identically with the
// vectorized path on vs off (the fig6 gate's in-tree twin).
TEST_P(VectorParityTest, AskByteIdenticalVectorOnAndOff) {
  const std::string& domain = GetParam();
  auto& engine = world_->mutable_engine();
  const auto* spec = world_->spec(domain);
  ASSERT_NE(spec, nullptr);

  Rng rng(555);
  auto questions = datagen::GenerateQuestions(
      *spec, *world_->table(domain), 60, datagen::QuestionGenOptions(), &rng);

  core::EngineOptions on;  // defaults: use_vector_kernels = true
  core::EngineOptions off;
  off.use_vector_kernels = false;

  std::vector<std::string> on_answers, off_answers;
  engine.SetOptions(on);
  for (const auto& q : questions) {
    auto r = engine.AskInDomain(domain, q.text);
    on_answers.push_back(r.ok() ? core::CanonicalAskResultString(r.value())
                                : "ERROR: " + r.status().ToString());
  }
  engine.SetOptions(off);
  for (const auto& q : questions) {
    auto r = engine.AskInDomain(domain, q.text);
    off_answers.push_back(r.ok() ? core::CanonicalAskResultString(r.value())
                                 : "ERROR: " + r.status().ToString());
  }
  engine.SetOptions(on);

  ASSERT_EQ(on_answers.size(), off_answers.size());
  for (std::size_t i = 0; i < on_answers.size(); ++i) {
    EXPECT_EQ(on_answers[i], off_answers[i])
        << domain << " q" << i << ": " << questions[i].text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDomains, VectorParityTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> names;
      for (const auto& spec : datagen::AllDomainSpecs()) {
        names.push_back(spec.schema.domain());
      }
      return names;
    }()));

}  // namespace
}  // namespace cqads
