// Unit tests for the exec layer: histograms and selectivity estimation,
// density-adaptive set algebra, compiled predicates (shared NULL and
// canonical-contains semantics), plan-node correctness against the seed
// executor, cost-aware conjunction ordering, and the Explain() dump.
#include "db/exec/planner.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/boolean_assembler.h"
#include "db/compare.h"
#include "db/exec/rowset_ops.h"
#include "db/exec/table_stats.h"
#include "db/executor.h"
#include "test_fixtures.h"

namespace cqads::db {
namespace {

using exec::CompiledPredicate;
using exec::Histogram;
using exec::Planner;
using exec::TableStats;

Predicate TextEq(std::size_t attr, const char* v,
                 CompareOp op = CompareOp::kEq) {
  Predicate p;
  p.attr = attr;
  p.op = op;
  p.value = Value::Text(v);
  return p;
}

Predicate Num(std::size_t attr, CompareOp op, double v, double hi = 0) {
  Predicate p;
  p.attr = attr;
  p.op = op;
  p.value = Value::Real(v);
  p.value_hi = Value::Real(hi);
  return p;
}

// ------------------------------------------------------------- histograms

TEST(HistogramTest, UniformRangeFractions) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  Histogram h = Histogram::Build(values);
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 99.0);
  EXPECT_EQ(h.total, 100u);
  EXPECT_NEAR(h.EstimateRangeFraction(0, 49), 0.5, 0.05);
  EXPECT_NEAR(h.EstimateRangeFraction(0, 99), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.EstimateRangeFraction(200, 300), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateRangeFraction(50, 40), 0.0);  // inverted
}

TEST(HistogramTest, SkipsNaNAndHandlesSingleValue) {
  std::vector<double> values = {7.0, std::nan(""), 7.0};
  Histogram h = Histogram::Build(values);
  EXPECT_EQ(h.total, 2u);
  EXPECT_DOUBLE_EQ(h.EstimateRangeFraction(6, 8), 1.0);
  EXPECT_DOUBLE_EQ(h.EstimateRangeFraction(8, 9), 0.0);
}

TEST(HistogramTest, EmptyColumn) {
  Histogram h = Histogram::Build(std::vector<double>{});
  EXPECT_EQ(h.total, 0u);
  EXPECT_DOUBLE_EQ(h.EstimateRangeFraction(0, 1), 0.0);
}

// ------------------------------------------------------------ selectivity

class SelectivityTest : public ::testing::Test {
 protected:
  SelectivityTest() : table_(cqads::testing::MiniCarTable()) {}
  db::Table table_;
};

TEST_F(SelectivityTest, EqualityUsesDistinctCounts) {
  const TableStats& stats = *table_.stats();
  // make: 13 postings over 7 distinct keys -> ~0.14 of rows per probe.
  double make_eq =
      stats.EstimateSelectivity(table_.schema(), TextEq(0, "honda"));
  EXPECT_NEAR(make_eq, 13.0 / 7.0 / 13.0, 1e-9);
  // Negation is the complement.
  double make_ne = stats.EstimateSelectivity(
      table_.schema(), TextEq(0, "honda", CompareOp::kNe));
  EXPECT_NEAR(make_eq + make_ne, 1.0, 1e-9);
}

TEST_F(SelectivityTest, RangeUsesHistogramMass) {
  const TableStats& stats = *table_.stats();
  double below_all = stats.EstimateSelectivity(
      table_.schema(), Num(3, CompareOp::kLt, 1e9));
  EXPECT_NEAR(below_all, 1.0, 0.05);
  double narrow = stats.EstimateSelectivity(
      table_.schema(), Num(3, CompareOp::kBetween, 5500, 7000));
  EXPECT_LT(narrow, below_all);
  EXPECT_GT(narrow, 0.0);
}

TEST_F(SelectivityTest, StatsResolverMatchesObservedRanges) {
  auto resolver =
      core::MakeStatsResolver(&table_.schema(), table_.stats_ptr());
  // 6000 falls only inside price's observed [5500, 42000].
  EXPECT_EQ(resolver(6000, false), (std::vector<std::size_t>{3}));
  // 2005 falls only inside year's [2002, 2010].
  EXPECT_EQ(resolver(2005, false), (std::vector<std::size_t>{2}));
  // '$' restricts to money-denominated attributes.
  EXPECT_EQ(resolver(100000, false), (std::vector<std::size_t>{4}));
  EXPECT_TRUE(resolver(100000, true).empty());
  EXPECT_TRUE(resolver(1e12, false).empty());
}

TEST_F(SelectivityTest, TextRangeOpsMatchNothing) {
  const TableStats& stats = *table_.stats();
  EXPECT_DOUBLE_EQ(
      stats.EstimateSelectivity(table_.schema(),
                                TextEq(0, "honda", CompareOp::kLt)),
      0.0);
}

// ------------------------------------------------------ adaptive set ops

TEST(RowSetOpsTest, BitmapRoundTrip) {
  RowSet set = {0, 3, 63, 64, 65, 127, 200};
  exec::RowBitmap bm = exec::RowBitmap::FromSet(set, 256);
  EXPECT_EQ(bm.Count(), set.size());
  EXPECT_TRUE(bm.Test(63));
  EXPECT_FALSE(bm.Test(62));
  EXPECT_EQ(bm.ToSet(), set);
}

TEST(RowSetOpsTest, AdaptiveOpsMatchSortedMergeAcrossDensities) {
  cqads::Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t universe = 1 + rng.UniformIndex(300);
    auto draw = [&](double density) {
      RowSet s;
      for (RowId r = 0; r < universe; ++r) {
        if (rng.Bernoulli(density)) s.push_back(r);
      }
      return s;
    };
    // Sweep sparse and dense inputs so both physical paths are exercised.
    const double da = trial % 2 == 0 ? 0.02 : 0.7;
    const double db = trial % 3 == 0 ? 0.05 : 0.6;
    RowSet a = draw(da), b = draw(db);
    EXPECT_EQ(exec::UnionSets(a, b, universe), Union(a, b));
    EXPECT_EQ(exec::IntersectSets(a, b, universe), Intersect(a, b));
    EXPECT_EQ(exec::DifferenceSets(a, b, universe), Difference(a, b));
  }
}

// ------------------------------------------------- compiled predicates

class CompiledPredicateTest : public ::testing::Test {
 protected:
  CompiledPredicateTest()
      : table_(cqads::testing::MiniCarTable()), exec_(&table_) {}
  db::Table table_;
  db::Executor exec_;

  void ExpectAgreesWithExecutor(const Predicate& pred) {
    CompiledPredicate cp = exec::CompilePredicate(table_, pred);
    for (RowId r = 0; r < table_.num_rows(); ++r) {
      EXPECT_EQ(cp.Matches(table_.store(), r), exec_.Matches(r, pred))
          << "row " << r;
    }
  }
};

TEST_F(CompiledPredicateTest, AgreesWithExecutorAcrossOps) {
  ExpectAgreesWithExecutor(TextEq(0, "honda"));
  ExpectAgreesWithExecutor(TextEq(0, "honda", CompareOp::kNe));
  ExpectAgreesWithExecutor(TextEq(9, "cd player"));
  ExpectAgreesWithExecutor(TextEq(9, "player", CompareOp::kContains));
  ExpectAgreesWithExecutor(TextEq(7, "4dr"));  // shorthand for "4 door"
  ExpectAgreesWithExecutor(Num(3, CompareOp::kLt, 9000));
  ExpectAgreesWithExecutor(Num(3, CompareOp::kBetween, 6000, 9000));
  ExpectAgreesWithExecutor(Num(2, CompareOp::kEq, 2007));
  ExpectAgreesWithExecutor(Num(2, CompareOp::kNe, 2007));
  ExpectAgreesWithExecutor(TextEq(5, "blue", CompareOp::kGt));  // text range
}

TEST_F(CompiledPredicateTest, NullCellsMatchOnlyNegations) {
  Table t(cqads::testing::MiniCarSchema());
  Record rec(10);
  rec[0] = Value::Text("honda");
  rec[1] = Value::Text("accord");
  ASSERT_TRUE(t.Insert(std::move(rec)).ok());
  t.BuildIndexes();
  // Shared rule: NullComparisonMatches is the single source of truth.
  EXPECT_TRUE(NullComparisonMatches(CompareOp::kNe));
  EXPECT_FALSE(NullComparisonMatches(CompareOp::kEq));
  EXPECT_FALSE(NullComparisonMatches(CompareOp::kLt));

  CompiledPredicate null_lt =
      exec::CompilePredicate(t, Num(3, CompareOp::kLt, 1e9));
  EXPECT_FALSE(null_lt.Matches(t.store(), 0));
  CompiledPredicate null_ne =
      exec::CompilePredicate(t, TextEq(5, "blue", CompareOp::kNe));
  EXPECT_TRUE(null_ne.Matches(t.store(), 0));
}

TEST_F(CompiledPredicateTest, NumericContainsUsesCanonicalRendering) {
  // Price 16536 rendered canonically contains "653".
  Predicate p = TextEq(3, "653", CompareOp::kContains);
  CompiledPredicate cp = exec::CompilePredicate(table_, p);
  EXPECT_TRUE(cp.Matches(table_.store(), 1));   // 16536
  EXPECT_FALSE(cp.Matches(table_.store(), 0));  // 8900
  EXPECT_EQ(cp.Matches(table_.store(), 1), exec_.Matches(1, p));

  // A numeric-literal probe and the stored real render through ONE path:
  // "8900.50" (text) finds a hypothetical 8900.5 cell and vice versa.
  EXPECT_EQ(CanonicalContainsText(Value::Text("8900.50")),
            CanonicalContainsText(Value::Real(8900.5)));
  EXPECT_EQ(CanonicalContainsText(Value::Real(8900.0)), "8900");
  EXPECT_EQ(CanonicalContainsText(Value::Text("4 door")), "4 door");
  // Only plain decimals canonicalize: hex, scientific, and padded forms
  // are not numeric probes and stay verbatim.
  EXPECT_EQ(CanonicalContainsText(Value::Text("0x10")), "0x10");
  EXPECT_EQ(CanonicalContainsText(Value::Text("1e3")), "1e3");
  EXPECT_EQ(CanonicalContainsText(Value::Text(" 8900")), " 8900");
}

// ------------------------------------------------------- planner + plans

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : table_(cqads::testing::MiniCarTable()),
        exec_(&table_),
        planner_(&table_) {}

  void ExpectPlanMatchesSeed(const Query& q) {
    auto seed = exec_.Execute(q);
    auto planned = planner_.Run(q);
    ASSERT_TRUE(seed.ok());
    ASSERT_TRUE(planned.ok());
    EXPECT_EQ(planned.value().rows, seed.value().rows);
  }

  db::Table table_;
  db::Executor exec_;
  Planner planner_;
};

TEST_F(PlannerTest, ConjunctionMatchesSeedExecutor) {
  Query q;
  q.where = Expr::MakeAnd({Expr::MakePredicate(TextEq(0, "honda")),
                           Expr::MakePredicate(TextEq(5, "blue")),
                           Expr::MakePredicate(Num(3, CompareOp::kLt, 17000))});
  ExpectPlanMatchesSeed(q);
}

TEST_F(PlannerTest, DisjunctionNegationAndNestingMatchSeed) {
  Query q;
  q.where = Expr::MakeOr(
      {Expr::MakeAnd({Expr::MakePredicate(TextEq(0, "toyota")),
                      Expr::MakeNot(Expr::MakePredicate(TextEq(5, "blue")))}),
       Expr::MakePredicate(Num(2, CompareOp::kGe, 2009))});
  ExpectPlanMatchesSeed(q);
}

TEST_F(PlannerTest, SuperlativeAndLimitMatchSeed) {
  Query q;
  q.where = Expr::MakePredicate(TextEq(0, "honda"));
  q.superlative = Superlative{3, true};
  q.limit = 2;
  ExpectPlanMatchesSeed(q);

  q.superlative = Superlative{3, false};
  ExpectPlanMatchesSeed(q);
}

TEST_F(PlannerTest, EmptyWhereMatchesAll) {
  Query q;
  ExpectPlanMatchesSeed(q);
}

TEST_F(PlannerTest, OutOfRangeAttributeFails) {
  Query q;
  q.where = Expr::MakePredicate(TextEq(99, "zzz"));
  EXPECT_FALSE(planner_.Compile(q).ok());
}

TEST_F(PlannerTest, UnbuiltIndexesFail) {
  Table fresh(cqads::testing::MiniCarSchema());
  Planner p(&fresh);
  Query q;
  EXPECT_FALSE(p.Compile(q).ok());
}

TEST_F(PlannerTest, MostSelectivePredicateDrivesThePlan) {
  // price BETWEEN 42000 AND 42000 is estimated far more selective than
  // make = 'honda', so the cost-aware order INVERTS the paper's Type rank
  // (price is Type III, make is Type I) and seeds from the range scan.
  Query q;
  q.where = Expr::MakeAnd(
      {Expr::MakePredicate(TextEq(0, "honda")),
       Expr::MakePredicate(Num(3, CompareOp::kBetween, 42000, 42000))});
  auto plan = planner_.Compile(q);
  ASSERT_TRUE(plan.ok());
  const std::string explain = plan.value()->Explain();
  const auto range_pos = explain.find("RangeScan(price");
  const auto filter_pos = explain.find("Filter(make");
  ASSERT_NE(range_pos, std::string::npos) << explain;
  ASSERT_NE(filter_pos, std::string::npos) << explain;
  // Filter wraps the scan: it prints first, the seed scan is the inner line.
  EXPECT_LT(filter_pos, range_pos) << explain;
  ExpectPlanMatchesSeed(q);
}

TEST_F(PlannerTest, TypeRankBreaksSelectivityTies) {
  // make and color have identical eq estimates on the fixture (13 postings
  // over 7 keys each): the Type rank keeps the paper's order (make first).
  Query q;
  q.where = Expr::MakeAnd({Expr::MakePredicate(TextEq(5, "blue")),
                           Expr::MakePredicate(TextEq(0, "honda"))});
  auto plan = planner_.Compile(q);
  ASSERT_TRUE(plan.ok());
  const std::string explain = plan.value()->Explain();
  EXPECT_NE(explain.find("IndexScan(make"), std::string::npos) << explain;
  EXPECT_NE(explain.find("Filter(color"), std::string::npos) << explain;
}

TEST_F(PlannerTest, ExplainShowsPlanShape) {
  Query q;
  q.where = Expr::MakeOr({Expr::MakePredicate(TextEq(0, "honda")),
                          Expr::MakePredicate(TextEq(0, "toyota"))});
  q.superlative = Superlative{3, true};
  q.limit = 5;
  auto plan = planner_.Compile(q);
  ASSERT_TRUE(plan.ok());
  const std::string explain = plan.value()->Explain();
  EXPECT_NE(explain.find("Plan(limit=5, superlative=price asc)"),
            std::string::npos)
      << explain;
  EXPECT_NE(explain.find("Union("), std::string::npos) << explain;
  EXPECT_NE(explain.find("IndexScan(make = 'honda'"), std::string::npos)
      << explain;
}

TEST_F(PlannerTest, ShorthandKeysResolvedAtCompileTime) {
  Query q;
  q.where = Expr::MakePredicate(TextEq(7, "4dr"));  // stored as "4 door"
  auto plan = planner_.Compile(q);
  ASSERT_TRUE(plan.ok());
  ExpectPlanMatchesSeed(q);
  // The needle is not a stored value itself; the one resolved key is its
  // shorthand expansion "4 door".
  EXPECT_NE(plan.value()->Explain().find("keys=1"), std::string::npos)
      << plan.value()->Explain();
  auto res = plan.value()->Execute();
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res.value().rows.empty());
}

}  // namespace
}  // namespace cqads::db
