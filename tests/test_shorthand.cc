#include "text/shorthand.h"

#include <gtest/gtest.h>

namespace cqads::text {
namespace {

TEST(NormalizeTest, NumberWordsAndPunctuation) {
  EXPECT_EQ(NormalizeForShorthand("four door"), "4door");
  EXPECT_EQ(NormalizeForShorthand("4-Door"), "4door");
  EXPECT_EQ(NormalizeForShorthand("4 doors"), "4door");  // plural dropped
  EXPECT_EQ(NormalizeForShorthand("2 dr"), "2dr");
}

TEST(NormalizeTest, PluralOnlyDroppedFromLastWord) {
  // "glass" keeps its 's' (not the last word); "table" has no plural 's'.
  EXPECT_EQ(NormalizeForShorthand("glass table"), "glasstable");
  EXPECT_EQ(NormalizeForShorthand("glass tables"), "glasstable");
}

TEST(IsSubsequenceTest, Basics) {
  EXPECT_TRUE(IsSubsequence("2dr", "2door"));
  EXPECT_TRUE(IsSubsequence("", "abc"));
  EXPECT_FALSE(IsSubsequence("abc", "ab"));
  EXPECT_FALSE(IsSubsequence("ba", "ab"));
}

// §4.2.3's example: every notation of "4 door" unifies.
struct ShorthandCase {
  const char* a;
  const char* b;
  bool match;
};

class ShorthandMatchTest : public ::testing::TestWithParam<ShorthandCase> {};

TEST_P(ShorthandMatchTest, MatchesExpectation) {
  const auto& c = GetParam();
  EXPECT_EQ(IsShorthandMatch(c.a, c.b), c.match) << c.a << " vs " << c.b;
  EXPECT_EQ(IsShorthandMatch(c.b, c.a), c.match) << "symmetry";
}

INSTANTIATE_TEST_SUITE_P(
    PaperVariants, ShorthandMatchTest,
    ::testing::Values(ShorthandCase{"4dr", "4 door", true},
                      ShorthandCase{"4 dr", "4 door", true},
                      ShorthandCase{"four door", "4 door", true},
                      ShorthandCase{"4 doors", "4 door", true},
                      ShorthandCase{"4-door", "4 door", true},
                      ShorthandCase{"4doors", "4 door", true},
                      ShorthandCase{"2dr", "2 door", true},
                      ShorthandCase{"2dr", "4 door", false},   // digit clash
                      ShorthandCase{"4dr", "2 door", false},
                      ShorthandCase{"dr", "4 door", false},    // digits lost
                      ShorthandCase{"r", "red", false},        // too short
                      ShorthandCase{"honda", "honda", true},   // identity
                      ShorthandCase{"civic", "accord", false}));

TEST(ShorthandMatchTest, CoverageGuardRejectsTinyAbbreviation) {
  // "ac" is an ordered subsequence of "anti lock brakes"? No first-char
  // match needed here; test the 40% coverage rule on a long value.
  EXPECT_FALSE(IsShorthandMatch("po", "power door locks"));
}

TEST(ShorthandMatchTest, OrderMatters) {
  EXPECT_FALSE(IsShorthandMatch("rd4", "4 door"));
}

TEST(ShorthandMatchTest, EmptyNeverMatches) {
  EXPECT_FALSE(IsShorthandMatch("", "4 door"));
  EXPECT_FALSE(IsShorthandMatch("", ""));
}

}  // namespace
}  // namespace cqads::text
