// Protocol-layer tests: JSON parse/dump over adversarial input, frame
// reassembly split at EVERY byte boundary, oversized/zero-frame rejection,
// and request/response codec round trips — the pure-computation half of the
// network front-end (no sockets; see test_net_serve.cc for the wire).
#include "serve/net/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/json.h"

namespace cqads::serve::net {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonTest, ParsesScalarsAndStructures) {
  auto v = JsonValue::Parse(
      R"({"a":1,"b":-2.5,"c":"x","d":true,"e":null,"f":[1,2,3],"g":{"h":0}})");
  ASSERT_TRUE(v.ok()) << v.status();
  const JsonValue& o = v.value();
  EXPECT_EQ(o.GetNumber("a"), 1.0);
  EXPECT_EQ(o.GetNumber("b"), -2.5);
  EXPECT_EQ(o.GetString("c"), "x");
  EXPECT_TRUE(o.GetBool("d"));
  ASSERT_NE(o.Find("e"), nullptr);
  EXPECT_TRUE(o.Find("e")->is_null());
  ASSERT_NE(o.Find("f"), nullptr);
  EXPECT_EQ(o.Find("f")->array_items().size(), 3u);
  ASSERT_NE(o.Find("g"), nullptr);
  EXPECT_EQ(o.Find("g")->GetNumber("h", -1.0), 0.0);
}

TEST(JsonTest, DumpParsesBackIdentically) {
  JsonValue v = JsonValue::Object();
  v.Set("id", JsonValue::Number(1234567890123.0));
  v.Set("text", JsonValue::Str("line\nquote\"back\\slash\ttab"));
  v.Set("neg", JsonValue::Number(-0.125));
  v.Set("flag", JsonValue::Bool(false));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Str(""));
  arr.Append(JsonValue::Null());
  v.Set("arr", std::move(arr));
  const std::string dumped = v.Dump();
  auto back = JsonValue::Parse(dumped);
  ASSERT_TRUE(back.ok()) << back.status() << " from " << dumped;
  // A second dump must be byte-identical: the writer is deterministic and
  // the parser preserves member order.
  EXPECT_EQ(back.value().Dump(), dumped);
  EXPECT_EQ(back.value().GetString("text"), "line\nquote\"back\\slash\ttab");
  EXPECT_EQ(back.value().GetNumber("id"), 1234567890123.0);
}

TEST(JsonTest, IntegralNumbersRoundTripExactly) {
  // Request ids ride JSON numbers; they must not pick up exponent forms.
  JsonValue v = JsonValue::Object();
  v.Set("id", JsonValue::Number(9007199254740991.0));  // 2^53 - 1
  EXPECT_EQ(v.Dump(), "{\"id\":9007199254740991}");
  auto back = JsonValue::Parse(v.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().GetNumber("id"), 9007199254740991.0);
}

TEST(JsonTest, DecodesEscapesIncludingSurrogatePairs) {
  auto v = JsonValue::Parse(R"("a\u0041\n\u00e9\u20ac\ud83d\ude00")");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v.value().string_value(),
            "aA\n\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(JsonTest, ControlBytesSurviveEscapedRoundTrip) {
  std::string raw;
  for (int c = 0; c < 0x20; ++c) raw.push_back(static_cast<char>(c));
  raw += "\x7f\xc3\xa9";  // DEL passes through; UTF-8 passes through
  std::string dumped;
  JsonEscape(raw, &dumped);
  auto back = JsonValue::Parse(dumped);
  ASSERT_TRUE(back.ok()) << back.status() << " from " << dumped;
  EXPECT_EQ(back.value().string_value(), raw);
}

TEST(JsonTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",                      // empty
      "{",                     // truncated object
      "[1,2",                  // truncated array
      "\"abc",                 // unterminated string
      "{\"a\":}",              // missing value
      "{\"a\":1,}",            // trailing comma
      "{a:1}",                 // unquoted key
      "[1] garbage",           // trailing bytes
      "nul",                   // bad literal
      "01x",                   // bad number tail
      "\"\\q\"",               // bad escape
      "\"\\u12\"",             // truncated \u
      "\"\\ud800\"",           // unpaired high surrogate
      "\"\\udc00\"",           // unpaired low surrogate
      "\"raw\ncontrol\"",      // raw control byte in string
      "{\"a\" 1}",             // missing colon
  };
  for (const char* text : bad) {
    EXPECT_FALSE(JsonValue::Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonTest, RejectsExcessiveNestingWithoutCrashing) {
  std::string deep(2000, '[');
  deep.append(2000, ']');
  auto v = JsonValue::Parse(deep);
  EXPECT_FALSE(v.ok());
}

// ---------------------------------------------------------------- frames

TEST(FrameTest, EncodesLittleEndianLengthPrefix) {
  std::string out;
  AppendFrame("abc", &out);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(out[3], 0);
  EXPECT_EQ(out.substr(4), "abc");
}

TEST(FrameTest, ReassemblesAcrossEverySplitBoundary) {
  // Two frames, split into (first k bytes, rest) for every k: the decoder
  // must produce exactly the same two payloads regardless of where the
  // transport happened to cut the stream.
  std::string wire;
  AppendFrame("hello world", &wire);
  AppendFrame(std::string(300, 'x') + "\x01\x02\xff", &wire);
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), split);
    std::vector<std::string> frames;
    std::string payload;
    while (decoder.Pop(&payload) == FrameDecoder::Next::kFrame) {
      frames.push_back(payload);
    }
    decoder.Feed(wire.data() + split, wire.size() - split);
    while (decoder.Pop(&payload) == FrameDecoder::Next::kFrame) {
      frames.push_back(payload);
    }
    ASSERT_EQ(frames.size(), 2u) << "split at " << split;
    EXPECT_EQ(frames[0], "hello world") << "split at " << split;
    EXPECT_EQ(frames[1], std::string(300, 'x') + "\x01\x02\xff")
        << "split at " << split;
    EXPECT_EQ(decoder.buffered_bytes(), 0u) << "split at " << split;
  }
}

TEST(FrameTest, ReassemblesFedOneByteAtATime) {
  std::string wire;
  AppendFrame("q", &wire);
  AppendFrame("rs", &wire);
  FrameDecoder decoder;
  std::vector<std::string> frames;
  for (char c : wire) {
    decoder.Feed(&c, 1);
    std::string payload;
    while (decoder.Pop(&payload) == FrameDecoder::Next::kFrame) {
      frames.push_back(payload);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "q");
  EXPECT_EQ(frames[1], "rs");
}

TEST(FrameTest, RejectsZeroLengthFrame) {
  FrameDecoder decoder;
  const char zeros[4] = {0, 0, 0, 0};
  decoder.Feed(zeros, 4);
  std::string payload;
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kError);
  EXPECT_NE(decoder.error().find("zero-length"), std::string::npos);
  // The error state is sticky: more bytes never resynchronize.
  std::string more;
  AppendFrame("ok", &more);
  decoder.Feed(more.data(), more.size());
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kError);
}

TEST(FrameTest, RejectsOversizedFrameFromHeaderAlone) {
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  // Header declares 1025 bytes; the decoder must reject on the header,
  // before any payload arrives (never buffering toward a hostile length).
  const char header[4] = {0x01, 0x04, 0, 0};
  decoder.Feed(header, 4);
  std::string payload;
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kError);
  EXPECT_NE(decoder.error().find("exceeds cap"), std::string::npos);
}

TEST(FrameTest, PartialHeaderNeedsMore) {
  FrameDecoder decoder;
  const char partial[3] = {9, 0, 0};
  decoder.Feed(partial, 3);
  std::string payload;
  EXPECT_EQ(decoder.Pop(&payload), FrameDecoder::Next::kNeedMore);
}

// ---------------------------------------------------------------- codec

TEST(CodecTest, RequestRoundTrips) {
  Request request;
  request.id = 42;
  request.method = "ask_in_domain";
  request.domain = "cars";
  request.question = "red honda \"accord\" under $9,000\nwith sunroof";
  request.budget_ms = 25.5;
  auto back = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value().id, 42u);
  EXPECT_EQ(back.value().method, "ask_in_domain");
  EXPECT_EQ(back.value().domain, "cars");
  EXPECT_EQ(back.value().question, request.question);
  EXPECT_DOUBLE_EQ(back.value().budget_ms, 25.5);
}

TEST(CodecTest, NegativeBudgetRoundTrips) {
  Request request;
  request.id = 1;
  request.method = "ask";
  request.question = "q";
  request.budget_ms = -1.0;  // the already-expired test hook
  auto back = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_DOUBLE_EQ(back.value().budget_ms, -1.0);
}

TEST(CodecTest, RejectsMalformedRequests) {
  EXPECT_FALSE(DecodeRequest("not json").ok());
  EXPECT_FALSE(DecodeRequest("[1,2,3]").ok());          // not an object
  EXPECT_FALSE(DecodeRequest("{\"id\":1}").ok());       // no method
  EXPECT_FALSE(DecodeRequest("{\"method\":7}").ok());   // non-string method
  EXPECT_FALSE(DecodeRequest("{\"id\":-3,\"method\":\"ask\"}").ok());
}

TEST(CodecTest, ResponseRoundTripsEveryStatus) {
  const StatusCode codes[] = {
      StatusCode::kOk,         StatusCode::kInvalidArgument,
      StatusCode::kNotFound,   StatusCode::kDeadlineExceeded,
      StatusCode::kOverloaded, StatusCode::kInternal,
      StatusCode::kDataLoss,
  };
  for (StatusCode code : codes) {
    Response response;
    response.id = 7;
    response.status = WireStatusName(code);
    if (code != StatusCode::kOk) response.error = "why";
    response.degraded = (code == StatusCode::kOk);
    response.domain = "jewellery";
    response.canonical = "domain=jewellery\nrow=3 exact=1\n";
    auto back = DecodeResponse(EncodeResponse(response));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back.value().id, 7u);
    EXPECT_EQ(back.value().status, WireStatusName(code));
    EXPECT_EQ(WireStatusCode(back.value().status), code);
    EXPECT_EQ(back.value().degraded, response.degraded);
    EXPECT_EQ(back.value().canonical, response.canonical);
  }
}

TEST(CodecTest, StatszStatsNestAsRealJson) {
  Response response;
  response.id = 9;
  response.stats_json = "{\"answered\":12,\"net\":{\"frames_in\":34}}";
  const std::string encoded = EncodeResponse(response);
  auto doc = JsonValue::Parse(encoded);
  ASSERT_TRUE(doc.ok());
  const JsonValue* stats = doc.value().Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->is_object()) << "stats must nest as an object, not a "
                                     "quoted blob: "
                                  << encoded;
  EXPECT_EQ(stats->GetNumber("answered"), 12.0);
  auto back = DecodeResponse(encoded);
  ASSERT_TRUE(back.ok());
  auto inner = JsonValue::Parse(back.value().stats_json);
  ASSERT_TRUE(inner.ok());
  ASSERT_NE(inner.value().Find("net"), nullptr);
  EXPECT_EQ(inner.value().Find("net")->GetNumber("frames_in"), 34.0);
}

TEST(CodecTest, WireStatusNamesInvert) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDataLoss); ++c) {
    const StatusCode code = static_cast<StatusCode>(c);
    EXPECT_EQ(WireStatusCode(WireStatusName(code)), code);
  }
  EXPECT_EQ(WireStatusCode("no_such_status"), StatusCode::kInternal);
}

// ------------------------------------------------------------- histogram

TEST(HistogramTest, PercentilesTrackKnownDistribution) {
  LatencyHistogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_DOUBLE_EQ(h.max_micros(), 10000.0);
  // Log-linear buckets guarantee ~3% relative error.
  EXPECT_NEAR(h.PercentileMicros(0.50), 5000.0, 5000.0 * 0.04);
  EXPECT_NEAR(h.PercentileMicros(0.99), 9900.0, 9900.0 * 0.04);
  EXPECT_NEAR(h.PercentileMicros(0.999), 9990.0, 9990.0 * 0.04);
  EXPECT_NEAR(h.mean_micros(), 5000.5, 0.01);
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const double v = 17.0 * i + 3.0;
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.max_micros(), combined.max_micros());
  for (double q : {0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.PercentileMicros(q), combined.PercentileMicros(q));
  }
}

TEST(HistogramTest, HandlesExtremes) {
  LatencyHistogram h;
  h.Record(0.0);
  h.Record(-5.0);  // clamps to zero
  h.Record(1e12);  // clamps into the top bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GT(h.PercentileMicros(1.0), 1e8);
  EXPECT_LT(h.PercentileMicros(0.01), 1.0);
}

}  // namespace
}  // namespace cqads::serve::net
