// Staged pipeline and snapshot tests: stage-by-stage equivalence with the
// engine facade, per-stage timings, contradiction short-circuiting, and
// snapshot lifecycle (version bumps, runtime sharing across generations).
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cqads_engine.h"
#include "core/engine_snapshot.h"
#include "qlog/log_generator.h"
#include "test_fixtures.h"

namespace cqads::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : table_(cqads::testing::MiniCarTable()) {
    qlog::LogGenSpec spec;
    spec.values = {"honda accord", "toyota camry", "chevy malibu",
                   "ford focus",   "honda civic",  "bmw m3"};
    spec.cluster_of = {0, 0, 0, 1, 1, 2};
    spec.num_sessions = 500;
    Rng rng(99);
    qlog::TiMatrix ti =
        qlog::TiMatrix::Build(qlog::GenerateQueryLog(spec, &rng));

    std::vector<std::string> corpus;
    for (int i = 0; i < 5; ++i) {
      corpus.push_back(
          "blue navy paint garage kept excellent condition clean original "
          "owner quality deal gold tan trim");
    }
    ws_ = wordsim::WsMatrix::Build(corpus);

    EXPECT_TRUE(engine_.AddDomain(&table_, std::move(ti)).ok());
    engine_.SetWordSimilarity(&ws_);
    EXPECT_TRUE(engine_.TrainClassifier().ok());
  }

  db::Table table_;
  wordsim::WsMatrix ws_;
  CqadsEngine engine_;
};

TEST_F(PipelineTest, FullPipelineMatchesEngineAsk) {
  const char* questions[] = {
      "blue honda accord",
      "honda accord blue less than 15000 dollars",
      "cheapest honda",
      "less than 5000 dollars",
      "honda accord 2004",
  };
  EngineSnapshot::Ptr snap = engine_.snapshot();
  for (const char* q : questions) {
    auto via_engine = engine_.Ask(q);
    ASSERT_TRUE(via_engine.ok()) << q;

    QueryContext ctx(q);
    ASSERT_TRUE(QueryPipeline::Full().Run(*snap, &ctx).ok()) << q;
    EXPECT_EQ(CanonicalAskResultString(ctx.result),
              CanonicalAskResultString(via_engine.value()))
        << q;
  }
}

TEST_F(PipelineTest, TimingsRecordedPerStage) {
  auto result = engine_.AskInDomain("cars", "blue honda accord");
  ASSERT_TRUE(result.ok());
  const auto& timings = result.value().timings;
  ASSERT_EQ(timings.size(), 8u);
  const char* expected[] = {"classify",   "tag",  "conditions", "assemble",
                            "render_sql", "plan", "execute",    "rank"};
  for (std::size_t i = 0; i < timings.size(); ++i) {
    EXPECT_EQ(timings[i].stage, expected[i]);
    EXPECT_GE(timings[i].micros, 0.0);
  }
}

TEST_F(PipelineTest, ContradictionShortCircuits) {
  auto result =
      engine_.AskInDomain("cars", "honda price below 2000 price above 9000");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().contradiction);
  EXPECT_TRUE(result.value().answers.empty());
  // The pipeline stopped at execute: no rank timing was recorded.
  ASSERT_FALSE(result.value().timings.empty());
  EXPECT_EQ(result.value().timings.back().stage, "execute");
}

TEST_F(PipelineTest, ParseOnlyPipelineMatchesEngineParse) {
  auto parsed = engine_.Parse("cars", "blue honda accord");
  ASSERT_TRUE(parsed.ok());

  QueryContext ctx("blue honda accord", "cars");
  ASSERT_TRUE(QueryPipeline::ParseOnly().Run(*engine_.snapshot(), &ctx).ok());
  EXPECT_EQ(ctx.parsed.sql, parsed.value().sql);
  EXPECT_EQ(ctx.parsed.assembled.interpretation,
            parsed.value().assembled.interpretation);
  EXPECT_EQ(ctx.parsed.tags.items.size(), parsed.value().tags.items.size());
}

TEST_F(PipelineTest, UnknownDomainFailsInTagStage) {
  QueryContext ctx("blue honda", "boats");
  Status st = QueryPipeline::Full().Run(*engine_.snapshot(), &ctx);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST_F(PipelineTest, SnapshotVersionBumpsOnMutation) {
  EngineSnapshot::Ptr before = engine_.snapshot();
  ASSERT_TRUE(engine_.TrainClassifier().ok());
  EngineSnapshot::Ptr after = engine_.snapshot();
  EXPECT_GT(after->version(), before->version());
  // The old snapshot still answers: in-flight queries are unaffected by
  // the swap.
  QueryContext ctx("blue honda accord", "cars");
  EXPECT_TRUE(QueryPipeline::Full().Run(*before, &ctx).ok());
  EXPECT_FALSE(ctx.result.answers.empty());
}

TEST_F(PipelineTest, SnapshotsShareDomainRuntimes) {
  EngineSnapshot::Ptr before = engine_.snapshot();
  ASSERT_TRUE(engine_.TrainClassifier().ok());
  EngineSnapshot::Ptr after = engine_.snapshot();
  // Retraining must not rebuild tries/lexicons: the per-domain runtime is
  // shared between generations by pointer.
  EXPECT_EQ(before->runtime("cars"), after->runtime("cars"));
}

TEST_F(PipelineTest, PerRequestRngIsDeterministic) {
  QueryContext a("blue honda accord");
  QueryContext b("blue honda accord");
  EXPECT_EQ(a.rng.UniformInt(0, 1000000), b.rng.UniformInt(0, 1000000));
}

TEST_F(PipelineTest, BuilderSnapshotAnswersWithoutEngine) {
  // The builder/snapshot layer is usable standalone (no facade).
  db::Table table = cqads::testing::MiniCarTable();
  EngineBuilder builder;
  ASSERT_TRUE(builder.AddDomain(&table, qlog::TiMatrix()).ok());
  ASSERT_TRUE(builder.TrainClassifier().ok());
  EngineSnapshot::Ptr snap = builder.Build();
  ASSERT_TRUE(snap->classifier_trained());

  QueryContext ctx("blue honda accord");
  ASSERT_TRUE(QueryPipeline::Full().Run(*snap, &ctx).ok());
  EXPECT_EQ(ctx.result.domain, "cars");
  EXPECT_FALSE(ctx.result.answers.empty());
}

}  // namespace
}  // namespace cqads::core
