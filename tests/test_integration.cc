// End-to-end integration tests over a reduced world (fewer ads/sessions than
// the benches for speed, all eight domains live).
#include <gtest/gtest.h>

#include "eval/experiments.h"

namespace cqads::eval {
namespace {

class WorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 4242;
    options.ads_per_domain = 250;
    options.sessions_per_domain = 600;
    options.corpus_docs_per_domain = 80;
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static datagen::World* world_;
};

datagen::World* WorldTest::world_ = nullptr;

TEST_F(WorldTest, AllEightDomainsLive) {
  auto domains = world_->domains();
  EXPECT_EQ(domains.size(), 8u);
  for (const auto& d : domains) {
    EXPECT_NE(world_->table(d), nullptr);
    EXPECT_NE(world_->spec(d), nullptr);
    EXPECT_NE(world_->query_log(d), nullptr);
    EXPECT_NE(world_->engine().runtime(d), nullptr);
    EXPECT_EQ(world_->table(d)->num_rows(), 250u);
  }
}

TEST_F(WorldTest, WsMatrixLearnedGroups) {
  // Colors from one related group score higher than cross-group colors.
  const auto& ws = world_->ws_matrix();
  EXPECT_GT(ws.Sim("black", "grey"), ws.Sim("black", "red"));
}

TEST_F(WorldTest, TiMatrixLearnedSegments) {
  const auto* rt = world_->engine().runtime("cars");
  ASSERT_NE(rt, nullptr);
  double same = rt->ti_matrix->Sim("honda accord", "toyota camry");
  double cross = rt->ti_matrix->Sim("honda accord", "chevy silverado");
  EXPECT_GT(same, cross);
}

TEST_F(WorldTest, BadDomainSelectionFails) {
  datagen::WorldOptions options;
  options.domains = {"nonexistent"};
  EXPECT_FALSE(datagen::World::Build(options).ok());
}

TEST_F(WorldTest, SurveyQuestionsGenerated) {
  auto questions = GenerateSurveyQuestions(*world_, 20, 15, 77);
  EXPECT_EQ(questions.size(), 8u);
  EXPECT_EQ(questions.at("cars").size(), 20u);
  EXPECT_EQ(questions.at("jewellery").size(), 15u);
}

TEST_F(WorldTest, ClassificationAccuracyHigh) {
  auto questions = GenerateSurveyQuestions(*world_, 40, 30, 78);
  auto result = RunClassification(*world_, questions);
  EXPECT_EQ(result.per_domain_accuracy.size(), 8u);
  // The paper reports upper-nineties average; the reduced world should
  // comfortably clear 80%.
  EXPECT_GT(result.average_accuracy, 0.8) << "avg accuracy too low";
  for (const auto& [domain, acc] : result.per_domain_accuracy) {
    EXPECT_GT(acc, 0.5) << domain;
  }
}

TEST_F(WorldTest, ExactMatchQualityHigh) {
  auto questions = GenerateSurveyQuestions(*world_, 40, 20, 79);
  auto result = RunExactMatch(*world_, questions);
  EXPECT_GT(result.questions_evaluated, 100u);
  // Paper: P=93.8%, R=92.7%. The shape requirement: both high.
  EXPECT_GT(result.precision, 0.8);
  EXPECT_GT(result.recall, 0.8);
  EXPECT_GT(result.f_measure, 0.8);
  // Most questions are all-or-nothing (paper's observation).
  EXPECT_GT(static_cast<double>(result.all_or_nothing) /
                result.questions_evaluated,
            0.6);
}

TEST_F(WorldTest, BooleanInterpretationAccuracyHigh) {
  auto result = RunBooleanInterpretation(*world_, "cars", 120, 10, 90, 80);
  EXPECT_GT(result.implicit_count + result.explicit_count, 80u);
  // Paper: ~90% both implicit and explicit.
  EXPECT_GT(result.overall_accuracy, 0.75);
  EXPECT_EQ(result.sampled.size(), 10u);
  for (const auto& s : result.sampled) {
    EXPECT_GE(s.appraiser_agreement, 0.0);
    EXPECT_LE(s.appraiser_agreement, 1.0);
    EXPECT_FALSE(s.text.empty());
  }
}

TEST_F(WorldTest, RankingExperimentOrdersCqadsFirst) {
  auto result = RunRanking(*world_, 3, 10, 81);
  ASSERT_EQ(result.scores.size(), 5u);
  EXPECT_GT(result.questions_used, 10u);
  const auto& cqads = result.scores.at("CQAds");
  const auto& random = result.scores.at("Random");
  // The headline Fig. 5 shape: CQAds beats the random baseline on every
  // metric.
  EXPECT_GT(cqads.p_at_1, random.p_at_1);
  EXPECT_GT(cqads.p_at_5, random.p_at_5);
  EXPECT_GT(cqads.mrr, random.mrr);
}

TEST_F(WorldTest, EfficiencyMeasuresAllApproaches) {
  auto questions = GenerateSurveyQuestions(*world_, 10, 5, 82);
  auto result = RunEfficiency(*world_, questions, 83);
  ASSERT_EQ(result.avg_ms.size(), 5u);
  for (const auto& [name, ms] : result.avg_ms) {
    EXPECT_GT(ms, 0.0) << name;
  }
}

TEST_F(WorldTest, EndToEndAskAcrossDomains) {
  struct Probe {
    const char* question;
    const char* domain;
  };
  const Probe probes[] = {
      {"looking for a blue honda accord car", "cars"},
      {"kawasaki ninja motorcycle under 8000", "motorcycles"},
      {"diamond gold ring jewellery", "jewellery"},
      {"pizza hut coupon", "food_coupons"},
  };
  for (const auto& probe : probes) {
    auto result = world_->engine().Ask(probe.question);
    ASSERT_TRUE(result.ok()) << probe.question;
    EXPECT_EQ(result.value().domain, probe.domain) << probe.question;
  }
}

TEST_F(WorldTest, DeterministicRebuild) {
  datagen::WorldOptions options;
  options.seed = 999;
  options.ads_per_domain = 60;
  options.sessions_per_domain = 100;
  options.corpus_docs_per_domain = 20;
  options.domains = {"cars"};
  auto w1 = datagen::World::Build(options);
  auto w2 = datagen::World::Build(options);
  ASSERT_TRUE(w1.ok() && w2.ok());
  const auto* t1 = w1.value()->table("cars");
  const auto* t2 = w2.value()->table("cars");
  ASSERT_EQ(t1->num_rows(), t2->num_rows());
  for (db::RowId r = 0; r < t1->num_rows(); ++r) {
    EXPECT_EQ(t1->RowText(r), t2->RowText(r));
  }
}

}  // namespace
}  // namespace cqads::eval
