#include "qlog/log_io.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "qlog/log_generator.h"

namespace cqads::qlog {
namespace {

QueryLog SampleLog() {
  QueryLog log;
  Session s;
  s.user_id = "user_7";
  LogQuery q1;
  q1.timestamp = 0.0;
  q1.value = "honda accord";
  q1.clicks.push_back({"toyota camry", 2, 45.5});
  LogQuery q2;
  q2.timestamp = 61.25;
  q2.value = "toyota camry";
  s.queries = {q1, q2};
  log.sessions.push_back(s);
  return log;
}

TEST(LogIoTest, SerializeFormat) {
  std::string text = SerializeLog(SampleLog());
  EXPECT_EQ(text,
            "session user_7\n"
            "query 0.000 honda accord\n"
            "click 2 45.500 toyota camry\n"
            "query 61.250 toyota camry\n");
}

TEST(LogIoTest, RoundTrip) {
  QueryLog original = SampleLog();
  auto parsed = ParseLog(SerializeLog(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const QueryLog& log = parsed.value();
  ASSERT_EQ(log.sessions.size(), 1u);
  EXPECT_EQ(log.sessions[0].user_id, "user_7");
  ASSERT_EQ(log.sessions[0].queries.size(), 2u);
  EXPECT_EQ(log.sessions[0].queries[0].value, "honda accord");
  ASSERT_EQ(log.sessions[0].queries[0].clicks.size(), 1u);
  const Click& c = log.sessions[0].queries[0].clicks[0];
  EXPECT_EQ(c.ad_value, "toyota camry");
  EXPECT_EQ(c.rank, 2);
  EXPECT_DOUBLE_EQ(c.dwell_seconds, 45.5);
  EXPECT_DOUBLE_EQ(log.sessions[0].queries[1].timestamp, 61.25);
}

TEST(LogIoTest, GeneratedLogRoundTripsAndRebuildsSameMatrix) {
  LogGenSpec spec;
  spec.values = {"honda accord", "toyota camry", "ford mustang"};
  spec.cluster_of = {0, 0, 1};
  spec.num_sessions = 200;
  Rng rng(42);
  QueryLog original = GenerateQueryLog(spec, &rng);

  auto parsed = ParseLog(SerializeLog(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().TotalQueries(), original.TotalQueries());
  EXPECT_EQ(parsed.value().TotalClicks(), original.TotalClicks());

  // The TI-matrix built from the round-tripped log matches (timestamps are
  // serialized at millisecond precision; similarities agree closely).
  TiMatrix m1 = TiMatrix::Build(original);
  TiMatrix m2 = TiMatrix::Build(parsed.value());
  EXPECT_EQ(m1.pair_count(), m2.pair_count());
  EXPECT_NEAR(m1.Sim("honda accord", "toyota camry"),
              m2.Sim("honda accord", "toyota camry"), 1e-3);
}

TEST(LogIoTest, CommentsAndBlankLinesIgnored) {
  auto parsed = ParseLog(
      "# exported log\n\nsession u1\n# a comment\nquery 0 honda\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().sessions.size(), 1u);
}

TEST(LogIoTest, StructuralErrorsRejected) {
  EXPECT_FALSE(ParseLog("query 0 honda\n").ok());          // before session
  EXPECT_FALSE(ParseLog("session u1\nclick 1 5 x\n").ok());  // before query
  EXPECT_FALSE(ParseLog("bogus line\n").ok());
  EXPECT_FALSE(ParseLog("session \n").ok());
  EXPECT_FALSE(ParseLog("session u1\nquery abc honda\n").ok());
  EXPECT_FALSE(ParseLog("session u1\nquery 0 honda\nclick 0 5 x\n").ok());
  EXPECT_FALSE(ParseLog("session u1\nquery 0 \n").ok());
}

TEST(LogIoTest, ErrorsCarryLineNumbers) {
  auto r = ParseLog("session u1\nbogus\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(LogIoTest, EmptyInputIsEmptyLog) {
  auto parsed = ParseLog("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().sessions.empty());
}

TEST(TiMatrixCsvTest, ExportsAllPairsWithHeader) {
  LogGenSpec spec;
  spec.values = {"a b", "c d"};
  spec.cluster_of = {0, 0};
  spec.num_sessions = 50;
  Rng rng(3);
  TiMatrix m = TiMatrix::Build(GenerateQueryLog(spec, &rng));
  std::string csv = ExportTiMatrixCsv(m);
  EXPECT_EQ(csv.find("value_a,value_b,ti_sim\n"), 0u);
  if (m.pair_count() > 0) {
    EXPECT_NE(csv.find("\"a b\",\"c d\","), std::string::npos);
  }
}

TEST(TiMatrixTest, AllPairsDeterministicOrder) {
  LogGenSpec spec;
  spec.values = {"x", "y", "z"};
  spec.cluster_of = {0, 0, 0};
  spec.num_sessions = 100;
  Rng rng(5);
  TiMatrix m = TiMatrix::Build(GenerateQueryLog(spec, &rng));
  auto pairs = m.AllPairs();
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(std::get<0>(pairs[i - 1]), std::get<0>(pairs[i]));
  }
}

}  // namespace
}  // namespace cqads::qlog
