#include <gtest/gtest.h>

#include "db/schema.h"
#include "db/value.h"
#include "test_fixtures.h"

namespace cqads::db {
namespace {

// ------------------------------------------------------------------ Value

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.AsText(), "");
  EXPECT_EQ(v.ToSqlLiteral(), "NULL");
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, IntAndRealCompareByValue) {
  EXPECT_EQ(Value::Int(5), Value::Real(5.0));
  EXPECT_NE(Value::Int(5), Value::Real(5.5));
  EXPECT_LT(Value::Int(4), Value::Real(4.5));
}

TEST(ValueTest, TextIsLowercased) {
  Value v = Value::Text("Honda Accord");
  EXPECT_EQ(v.text(), "honda accord");
  EXPECT_EQ(v, Value::Text("HONDA ACCORD"));
}

TEST(ValueTest, SqlLiteralQuotingAndEscaping) {
  EXPECT_EQ(Value::Text("blue").ToSqlLiteral(), "'blue'");
  EXPECT_EQ(Value::Text("o'neil").ToSqlLiteral(), "'o''neil'");
  EXPECT_EQ(Value::Int(42).ToSqlLiteral(), "42");
}

TEST(ValueTest, RealFormattingDropsTrailingZeros) {
  EXPECT_EQ(Value::Real(5000.0).AsText(), "5000");
  EXPECT_EQ(Value::Real(3.5).AsText(), "3.50");
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Null(), Value::Text("a"));
}

TEST(ValueTest, MixedTypesNeverEqual) {
  EXPECT_NE(Value::Text("5"), Value::Int(5));
}

TEST(ValueTest, NumericSortsBeforeText) {
  EXPECT_LT(Value::Int(99), Value::Text("a"));
}

// ------------------------------------------------------------------ Schema

TEST(SchemaTest, MiniCarSchemaValidates) {
  EXPECT_TRUE(cqads::testing::MiniCarSchema().Validate().ok());
}

TEST(SchemaTest, IndexOfAndResolve) {
  Schema s = cqads::testing::MiniCarSchema();
  EXPECT_EQ(s.IndexOf("make"), std::size_t{0});
  EXPECT_EQ(s.IndexOf("price"), std::size_t{3});
  EXPECT_FALSE(s.IndexOf("cost").has_value());   // alias, not a name
  EXPECT_EQ(s.Resolve("cost"), std::size_t{3});  // alias resolves
  EXPECT_EQ(s.Resolve("MAKER"), std::size_t{0});
  EXPECT_FALSE(s.Resolve("nonexistent").has_value());
}

TEST(SchemaTest, AttrsOfType) {
  Schema s = cqads::testing::MiniCarSchema();
  EXPECT_EQ(s.AttrsOfType(AttrType::kTypeI),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(s.AttrsOfType(AttrType::kTypeIII),
            (std::vector<std::size_t>{2, 3, 4}));
}

TEST(SchemaTest, NumericAttrs) {
  Schema s = cqads::testing::MiniCarSchema();
  EXPECT_EQ(s.NumericAttrs(), (std::vector<std::size_t>{2, 3, 4}));
}

TEST(SchemaTest, TableNameMatchesPaperStyle) {
  EXPECT_EQ(cqads::testing::MiniCarSchema().TableName(), "Car_Ads");
}

TEST(SchemaTest, ValidateRejectsNoTypeI) {
  Attribute a;
  a.name = "color";
  a.attr_type = AttrType::kTypeII;
  Schema s("broken", {a});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsDuplicateNames) {
  Attribute a;
  a.name = "make";
  a.attr_type = AttrType::kTypeI;
  Schema s("broken", {a, a});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsNonNumericTypeIII) {
  Attribute id;
  id.name = "make";
  id.attr_type = AttrType::kTypeI;
  Attribute bad;
  bad.name = "price";
  bad.attr_type = AttrType::kTypeIII;
  bad.data_kind = DataKind::kCategorical;
  Schema s("broken", {id, bad});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsNumericTypeI) {
  Attribute bad;
  bad.name = "make";
  bad.attr_type = AttrType::kTypeI;
  bad.data_kind = DataKind::kNumeric;
  Schema s("broken", {bad});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, NamesNormalizedToLowercase) {
  Attribute a;
  a.name = "Make";
  a.attr_type = AttrType::kTypeI;
  a.aliases = {"Brand"};
  Schema s("Cars", {a});
  EXPECT_EQ(s.domain(), "cars");
  EXPECT_EQ(s.attribute(0).name, "make");
  EXPECT_EQ(s.attribute(0).aliases[0], "brand");
}

}  // namespace
}  // namespace cqads::db
