#include "db/executor.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace cqads::db {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : table_(cqads::testing::MiniCarTable()), exec_(&table_) {}

  static Predicate TextEq(std::size_t attr, const char* value) {
    Predicate p;
    p.attr = attr;
    p.op = CompareOp::kEq;
    p.value = Value::Text(value);
    return p;
  }
  static Predicate Num(std::size_t attr, CompareOp op, double v,
                       double hi = 0) {
    Predicate p;
    p.attr = attr;
    p.op = op;
    p.value = Value::Real(v);
    if (op == CompareOp::kBetween) p.value_hi = Value::Real(hi);
    return p;
  }

  QueryResult Run(const Query& q) {
    auto r = exec_.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r.value() : QueryResult{};
  }

  Table table_;
  Executor exec_;
};

TEST_F(ExecutorTest, TextEqualityViaHashIndex) {
  Query q;
  q.where = Expr::MakePredicate(TextEq(0, "honda"));
  auto r = Run(q);
  EXPECT_EQ(r.rows, (std::vector<RowId>{0, 1, 2, 3}));
  EXPECT_GE(r.stats.index_lookups, 1u);
  EXPECT_EQ(r.stats.full_scans, 0u);
}

TEST_F(ExecutorTest, ShorthandEqualityMatchesVariant) {
  // "2dr" must match records storing "2 door" (§4.2.3).
  Query q;
  q.where = Expr::MakePredicate(TextEq(7, "2dr"));
  auto r = Run(q);
  EXPECT_EQ(r.rows, (std::vector<RowId>{3, 7, 8, 9}));
}

TEST_F(ExecutorTest, ShorthandCanBeDisabled) {
  Predicate p = TextEq(7, "2dr");
  p.allow_shorthand = false;
  Query q;
  q.where = Expr::MakePredicate(p);
  EXPECT_TRUE(Run(q).rows.empty());
}

TEST_F(ExecutorTest, NumericRangeOperators) {
  Query q;
  q.where = Expr::MakePredicate(Num(3, CompareOp::kLt, 6000));
  EXPECT_EQ(Run(q).rows, (std::vector<RowId>{3, 4}));

  q.where = Expr::MakePredicate(Num(3, CompareOp::kLe, 5899));
  EXPECT_EQ(Run(q).rows, (std::vector<RowId>{3, 4}));

  q.where = Expr::MakePredicate(Num(3, CompareOp::kGt, 18500));
  EXPECT_EQ(Run(q).rows, (std::vector<RowId>{9}));

  q.where = Expr::MakePredicate(Num(3, CompareOp::kGe, 18500));
  EXPECT_EQ(Run(q).rows, (std::vector<RowId>{8, 9}));

  q.where = Expr::MakePredicate(Num(2, CompareOp::kBetween, 2004, 2006));
  EXPECT_EQ(Run(q).rows, (std::vector<RowId>{1, 3, 5, 7, 11, 12}));
}

TEST_F(ExecutorTest, NumericEqAndNe) {
  Query q;
  q.where = Expr::MakePredicate(Num(2, CompareOp::kEq, 2007));
  EXPECT_EQ(Run(q).rows, (std::vector<RowId>{0, 10}));

  q.where = Expr::MakePredicate(Num(2, CompareOp::kNe, 2007));
  EXPECT_EQ(Run(q).rows.size(), table_.num_rows() - 2);
}

TEST_F(ExecutorTest, TextListEquality) {
  Query q;
  q.where = Expr::MakePredicate(TextEq(9, "gps"));
  EXPECT_EQ(Run(q).rows, (std::vector<RowId>{2, 8, 9, 10}));
}

TEST_F(ExecutorTest, ContainsUsesNGramIndex) {
  Predicate p;
  p.attr = 1;
  p.op = CompareOp::kContains;
  p.value = Value::Text("cor");
  Query q;
  q.where = Expr::MakePredicate(p);
  auto r = Run(q);
  // accord (x3), corolla, cherokee? no. "cor" in accord & corolla.
  EXPECT_EQ(r.rows, (std::vector<RowId>{0, 1, 2, 6}));
  EXPECT_GE(r.stats.index_lookups, 1u);
}

TEST_F(ExecutorTest, ContainsShortNeedleFallsBackToScan) {
  Predicate p;
  p.attr = 1;
  p.op = CompareOp::kContains;
  p.value = Value::Text("m3");
  Query q;
  q.where = Expr::MakePredicate(p);
  auto r = Run(q);
  EXPECT_EQ(r.rows, (std::vector<RowId>{9}));
  EXPECT_GE(r.stats.full_scans, 1u);
}

TEST_F(ExecutorTest, ConjunctionFollowsTypeOrder) {
  // §4.3: Type I seeds candidates; Type II/III verify on the shrinking set.
  Query q;
  q.where = Expr::MakeAnd({Expr::MakePredicate(TextEq(5, "blue")),
                           Expr::MakePredicate(TextEq(0, "honda"))});
  auto r = Run(q);
  EXPECT_EQ(r.rows, (std::vector<RowId>{0, 1}));
  // The Type I index probe happens exactly once; color is verified row-wise
  // on the honda set (4 rows).
  EXPECT_EQ(r.stats.index_lookups, 1u);
  EXPECT_EQ(r.stats.rows_verified, 4u);
}

TEST_F(ExecutorTest, DisjunctionUnions) {
  Query q;
  q.where = Expr::MakeOr({Expr::MakePredicate(TextEq(0, "bmw")),
                          Expr::MakePredicate(TextEq(0, "jeep"))});
  EXPECT_EQ(Run(q).rows, (std::vector<RowId>{9, 11}));
}

TEST_F(ExecutorTest, NotComplement) {
  Query q;
  q.where = Expr::MakeNot(Expr::MakePredicate(TextEq(6, "automatic")));
  EXPECT_EQ(Run(q).rows, (std::vector<RowId>{3, 7, 8, 9}));
}

TEST_F(ExecutorTest, NestedBooleanExpression) {
  // (honda OR toyota) AND blue
  Query q;
  q.where = Expr::MakeAnd(
      {Expr::MakeOr({Expr::MakePredicate(TextEq(0, "honda")),
                     Expr::MakePredicate(TextEq(0, "toyota"))}),
       Expr::MakePredicate(TextEq(5, "blue"))});
  EXPECT_EQ(Run(q).rows, (std::vector<RowId>{0, 1, 5}));
}

TEST_F(ExecutorTest, SuperlativeAppliedLast) {
  // "cheapest honda": filter honda first, then min price (§4.3's example).
  Query q;
  q.where = Expr::MakePredicate(TextEq(0, "honda"));
  q.superlative = Superlative{3, true};
  q.limit = 1;
  auto r = Run(q);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0], 3u);  // civic at 5500 is the cheapest honda
}

TEST_F(ExecutorTest, SuperlativeDescending) {
  Query q;
  q.superlative = Superlative{3, false};
  q.limit = 2;
  auto r = Run(q);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0], 9u);  // bmw m3 at 42000
  EXPECT_EQ(r.rows[1], 8u);  // mustang at 18500
}

TEST_F(ExecutorTest, LimitCapsResults) {
  Query q;
  q.limit = 5;
  EXPECT_EQ(Run(q).rows.size(), 5u);
}

TEST_F(ExecutorTest, EmptyWhereMatchesAll) {
  Query q;
  q.limit = 100;
  EXPECT_EQ(Run(q).rows.size(), table_.num_rows());
}

TEST_F(ExecutorTest, OutOfRangeAttributeFails) {
  Query q;
  q.where = Expr::MakePredicate(TextEq(99, "x"));
  EXPECT_FALSE(exec_.Execute(q).ok());
}

TEST_F(ExecutorTest, UnbuiltIndexesFail) {
  Table fresh(cqads::testing::MiniCarSchema());
  Executor e(&fresh);
  Query q;
  EXPECT_EQ(e.Execute(q).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorTest, MatchesExprMirrorsSetSemantics) {
  ExprPtr where = Expr::MakeAnd(
      {Expr::MakePredicate(TextEq(0, "honda")),
       Expr::MakeNot(Expr::MakePredicate(TextEq(5, "gold")))});
  Query q;
  q.where = where;
  q.limit = 100;
  auto rows = Run(q).rows;
  for (RowId r = 0; r < table_.num_rows(); ++r) {
    bool in_set = std::find(rows.begin(), rows.end(), r) != rows.end();
    EXPECT_EQ(exec_.MatchesExpr(r, *where), in_set) << "row " << r;
  }
}

TEST_F(ExecutorTest, NullCellFailsPositivePredicates) {
  Table t(cqads::testing::MiniCarSchema());
  Record rec(10);
  rec[0] = Value::Text("honda");
  rec[1] = Value::Text("accord");
  ASSERT_TRUE(t.Insert(std::move(rec)).ok());
  t.BuildIndexes();
  Executor e(&t);
  EXPECT_FALSE(e.Matches(0, Num(3, CompareOp::kLt, 1e9)));
  EXPECT_TRUE(e.Matches(0, TextEq(0, "honda")));
  Predicate ne = TextEq(5, "blue");
  ne.op = CompareOp::kNe;
  EXPECT_TRUE(e.Matches(0, ne));  // null is "not blue"
}

}  // namespace
}  // namespace cqads::db
