// Concurrent-serving smoke tests: AskBatch over a ≥4-thread worker pool
// must return byte-identical results to sequential CqadsEngine::Ask, the
// prepared-query cache must not change answers, and snapshot swaps
// (retrain / AddDomain) must be safe while queries are in flight.
#include "serve/concurrent_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/ask_types.h"
#include "eval/experiments.h"
#include "qlog/ti_matrix.h"
#include "serve/worker_pool.h"

namespace cqads::serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 31337;
    options.ads_per_domain = 120;
    options.sessions_per_domain = 300;
    options.corpus_docs_per_domain = 40;
    options.domains = {"cars", "jewellery"};
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();

    auto generated = eval::GenerateSurveyQuestions(*world_, 25, 25, 555);
    for (const auto& [domain, qs] : generated) {
      for (const auto& q : qs) questions_->push_back(q.text);
    }
    // Repeats exercise the prepared-query cache within a batch.
    const std::size_t unique_count = questions_->size();
    for (std::size_t i = 0; i < unique_count; i += 3) {
      questions_->push_back((*questions_)[i]);
    }
    ASSERT_GE(questions_->size(), 50u);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    questions_->clear();
  }

  static datagen::World* world_;
  static std::vector<std::string>* questions_;
};

datagen::World* ServeTest::world_ = nullptr;
std::vector<std::string>* ServeTest::questions_ = new std::vector<std::string>;

TEST_F(ServeTest, WorkerPoolRunsEverySubmittedTask) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST_F(ServeTest, AskBatchMatchesSequentialAskByteForByte) {
  const core::CqadsEngine& engine = world_->engine();

  // Sequential ground truth through the engine facade.
  std::vector<std::string> expected;
  std::size_t expected_failures = 0;
  for (const auto& q : *questions_) {
    auto r = engine.Ask(q);
    if (r.ok()) {
      expected.push_back(core::CanonicalAskResultString(r.value()));
    } else {
      expected.push_back("ERROR:" + r.status().ToString());
      ++expected_failures;
    }
  }

  ConcurrentServer::Options options;
  options.num_workers = 4;
  ConcurrentServer server(&engine, options);
  auto results = server.AskBatch(*questions_);
  ASSERT_EQ(results.size(), questions_->size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::string got = results[i].ok()
        ? core::CanonicalAskResultString(results[i].value())
        : "ERROR:" + results[i].status().ToString();
    EXPECT_EQ(got, expected[i]) << "question: " << (*questions_)[i];
  }
  // The batch contained repeats, so the cache must have hits.
  auto stats = server.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST_F(ServeTest, CacheDoesNotChangeAnswers) {
  const core::CqadsEngine& engine = world_->engine();
  ConcurrentServer::Options cached_options;
  cached_options.num_workers = 2;
  ConcurrentServer cached(&engine, cached_options);
  ConcurrentServer::Options uncached_options;
  uncached_options.num_workers = 2;
  uncached_options.enable_cache = false;
  ConcurrentServer uncached(&engine, uncached_options);

  for (const auto& q : *questions_) {
    auto a = cached.Ask(q);
    auto b = uncached.Ask(q);
    ASSERT_EQ(a.ok(), b.ok()) << q;
    if (!a.ok()) continue;
    EXPECT_EQ(core::CanonicalAskResultString(a.value()),
              core::CanonicalAskResultString(b.value()))
        << q;
  }
  // Ask each question twice: second pass is all hits.
  auto before = cached.cache_stats();
  for (const auto& q : *questions_) cached.Ask(q);
  auto after = cached.cache_stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(uncached.cache_stats().hits + uncached.cache_stats().misses, 0u);
}

TEST_F(ServeTest, ServerTimingsIncludeClassification) {
  // The server classifies out-of-pipeline (the cache key needs the
  // domain); the cost must still show up in the "classify" timing entry.
  ConcurrentServer server(&world_->engine());
  auto r = server.Ask((*questions_)[0]);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r.value().timings.empty());
  EXPECT_EQ(r.value().timings.front().stage, "classify");
  EXPECT_GT(r.value().timings.front().micros, 0.0);
}

TEST_F(ServeTest, AskInDomainSkipsClassification) {
  const core::CqadsEngine& engine = world_->engine();
  ConcurrentServer server(&engine);
  auto direct = server.AskInDomain("cars", "red car");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value().domain, "cars");
  EXPECT_EQ(server.AskInDomain("boats", "red").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServeTest, SnapshotSwapDuringInFlightQueries) {
  // A private engine (the world's is shared with other tests) that a
  // writer thread keeps retraining — swapping snapshots — while reader
  // threads hammer the server. In-flight queries pin their snapshot, so
  // every result must stay valid and non-racy (this test is the TSan
  // target in CI).
  core::CqadsEngine engine;
  for (const auto& domain : world_->domains()) {
    qlog::TiMatrix ti = qlog::TiMatrix::Build(*world_->query_log(domain));
    ASSERT_TRUE(engine.AddDomain(world_->table(domain), std::move(ti)).ok());
  }
  engine.SetWordSimilarity(&world_->ws_matrix());
  ASSERT_TRUE(engine.TrainClassifier().ok());

  ConcurrentServer::Options options;
  options.num_workers = 4;
  ConcurrentServer server(&engine, options);

  const std::uint64_t version_before = engine.snapshot()->version();
  std::atomic<bool> stop{false};
  std::atomic<int> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::size_t i = 0;
      while (!stop.load()) {
        const std::string& q = (*questions_)[i++ % questions_->size()];
        auto r = server.Ask(q);
        if (r.ok()) {
          EXPECT_FALSE(r.value().domain.empty());
          answered.fetch_add(1);
        }
      }
    });
  }

  for (int swap = 0; swap < 5; ++swap) {
    ASSERT_TRUE(engine.TrainClassifier().ok());
  }
  // Let the readers serve across the swapped snapshots a little longer —
  // bounded by a deadline so an Ask regression fails loudly instead of
  // hanging CI.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (answered.load() < 200 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GE(answered.load(), 200)
      << "readers failed to answer while snapshots were swapping";

  EXPECT_GE(engine.snapshot()->version(), version_before + 5);
  EXPECT_GT(answered.load(), 0);
}

TEST_F(ServeTest, AddDomainDuringServingBecomesVisible) {
  core::CqadsEngine engine;
  qlog::TiMatrix cars_ti = qlog::TiMatrix::Build(*world_->query_log("cars"));
  ASSERT_TRUE(
      engine.AddDomain(world_->table("cars"), std::move(cars_ti)).ok());
  engine.SetWordSimilarity(&world_->ws_matrix());
  ASSERT_TRUE(engine.TrainClassifier().ok());

  ConcurrentServer server(&engine);
  ASSERT_TRUE(server.AskInDomain("cars", "red car").ok());
  EXPECT_EQ(server.AskInDomain("jewellery", "gold ring").status().code(),
            StatusCode::kNotFound);

  qlog::TiMatrix jewel_ti =
      qlog::TiMatrix::Build(*world_->query_log("jewellery"));
  ASSERT_TRUE(
      engine.AddDomain(world_->table("jewellery"), std::move(jewel_ti)).ok());
  ASSERT_TRUE(engine.TrainClassifier().ok());

  auto r = server.AskInDomain("jewellery", "gold ring");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().domain, "jewellery");
}

}  // namespace
}  // namespace cqads::serve
