#include "db/indexes.h"

#include <gtest/gtest.h>

namespace cqads::db {
namespace {

// --------------------------------------------------------------- set algebra

TEST(RowSetOpsTest, Intersect) {
  EXPECT_EQ(Intersect({1, 3, 5}, {3, 4, 5}), (RowSet{3, 5}));
  EXPECT_EQ(Intersect({}, {1}), RowSet{});
  EXPECT_EQ(Intersect({1, 2}, {3}), RowSet{});
}

TEST(RowSetOpsTest, Union) {
  EXPECT_EQ(Union({1, 3}, {2, 3}), (RowSet{1, 2, 3}));
  EXPECT_EQ(Union({}, {}), RowSet{});
}

TEST(RowSetOpsTest, Difference) {
  EXPECT_EQ(Difference({1, 2, 3}, {2}), (RowSet{1, 3}));
  EXPECT_EQ(Difference({1}, {1}), RowSet{});
  EXPECT_EQ(Difference({}, {1}), RowSet{});
}

TEST(RowSetOpsTest, DeMorganOnSamples) {
  RowSet all = {0, 1, 2, 3, 4, 5};
  RowSet a = {0, 2, 4}, b = {2, 3};
  // all \ (a ∪ b) == (all \ a) ∩ (all \ b)
  EXPECT_EQ(Difference(all, Union(a, b)),
            Intersect(Difference(all, a), Difference(all, b)));
}

// ---------------------------------------------------------------- HashIndex

TEST(HashIndexTest, LookupAndKeys) {
  HashIndex idx;
  idx.Add("blue", 0);
  idx.Add("red", 1);
  idx.Add("blue", 3);
  EXPECT_EQ(idx.Lookup("blue"), (RowSet{0, 3}));
  EXPECT_EQ(idx.Lookup("red"), (RowSet{1}));
  EXPECT_TRUE(idx.Lookup("green").empty());
  EXPECT_EQ(idx.Keys(), (std::vector<std::string>{"blue", "red"}));
  EXPECT_EQ(idx.key_count(), 2u);
}

TEST(HashIndexTest, DuplicateRowIgnored) {
  HashIndex idx;
  idx.Add("x", 2);
  idx.Add("x", 2);
  EXPECT_EQ(idx.Lookup("x"), (RowSet{2}));
}

TEST(HashIndexTest, OutOfOrderAddNormalized) {
  HashIndex idx;
  idx.Add("x", 5);
  idx.Add("x", 1);
  EXPECT_EQ(idx.Lookup("x"), (RowSet{1, 5}));
}

// -------------------------------------------------------------- SortedIndex

TEST(SortedIndexTest, RangeInclusive) {
  SortedIndex idx;
  idx.Add(10, 0);
  idx.Add(20, 1);
  idx.Add(30, 2);
  idx.Add(20, 3);
  idx.Seal();
  EXPECT_EQ(idx.Range(20, 20), (RowSet{1, 3}));
  EXPECT_EQ(idx.Range(15, 30), (RowSet{1, 2, 3}));
  EXPECT_EQ(idx.Range(0, 100), (RowSet{0, 1, 2, 3}));
  EXPECT_TRUE(idx.Range(21, 29).empty());
  EXPECT_TRUE(idx.Range(30, 20).empty());  // inverted bounds
}

TEST(SortedIndexTest, Extreme) {
  SortedIndex idx;
  idx.Add(5, 0);
  idx.Add(1, 1);
  idx.Add(9, 2);
  idx.Seal();
  EXPECT_EQ(idx.Extreme(true, 1), (RowSet{1}));   // min
  EXPECT_EQ(idx.Extreme(false, 1), (RowSet{2}));  // max
  EXPECT_EQ(idx.Extreme(true, 10).size(), 3u);    // clamped to size
}

TEST(SortedIndexTest, MinMaxKeys) {
  SortedIndex idx;
  idx.Add(7, 0);
  idx.Add(-2, 1);
  idx.Seal();
  EXPECT_DOUBLE_EQ(idx.MinKey(), -2);
  EXPECT_DOUBLE_EQ(idx.MaxKey(), 7);
}

TEST(SortedIndexTest, UnsealedReturnsEmpty) {
  SortedIndex idx;
  idx.Add(1, 0);
  EXPECT_TRUE(idx.Range(0, 2).empty());
}

// --------------------------------------------------------------- NGramIndex

TEST(NGramIndexTest, CandidatesAreSupersetOfMatches) {
  NGramIndex idx;
  idx.Add("honda accord", 0);
  idx.Add("honda civic", 1);
  idx.Add("toyota camry", 2);
  EXPECT_EQ(idx.Candidates("accord"), (RowSet{0}));
  EXPECT_EQ(idx.Candidates("honda"), (RowSet{0, 1}));
  EXPECT_TRUE(idx.Candidates("mazda").empty());
}

TEST(NGramIndexTest, ShortNeedleRejected) {
  NGramIndex idx;
  idx.Add("blue", 0);
  EXPECT_FALSE(NGramIndex::CanLookup("ab"));
  EXPECT_TRUE(idx.Candidates("ab").empty());
}

TEST(NGramIndexTest, ShortTextNotIndexed) {
  NGramIndex idx;
  idx.Add("ab", 0);  // below gram length
  EXPECT_EQ(idx.gram_count(), 0u);
}

TEST(NGramIndexTest, CandidatesCanOverApproximate) {
  NGramIndex idx;
  // Needle "abab" has grams {aba, bab}. "babxaba" contains both grams but
  // not the substring "abab": a false candidate, which is why the executor
  // verifies candidates row by row.
  idx.Add("babxaba", 0);
  idx.Add("abab", 1);
  auto cands = idx.Candidates("abab");
  EXPECT_EQ(cands, (RowSet{0, 1}));  // row 0 is a false positive by design
}

TEST(NGramIndexTest, SubstringLength3Exact) {
  NGramIndex idx;
  idx.Add("2 door", 0);
  idx.Add("4 door", 1);
  EXPECT_EQ(idx.Candidates("2 d"), (RowSet{0}));
  EXPECT_EQ(idx.Candidates("door"), (RowSet{0, 1}));
}

}  // namespace
}  // namespace cqads::db
