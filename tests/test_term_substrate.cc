// The interned-term substrate: TermDict semantics, id-vs-string equivalence
// of the WS and TI similarity matrices, SimScorer-vs-seed Eq. 5 scoring,
// and engine-level byte-parity of the whole ask path with the substrate on
// vs off across all eight datagen domains.
#include <gtest/gtest.h>

#include <random>

#include "common/rng.h"
#include "core/pipeline.h"
#include "core/rank_sim.h"
#include "datagen/domain_spec.h"
#include "datagen/question_gen.h"
#include "datagen/world.h"
#include "qlog/ti_matrix.h"
#include "text/porter_stemmer.h"
#include "text/shorthand.h"
#include "text/stopwords.h"
#include "text/term_dict.h"
#include "wordsim/ws_matrix.h"

namespace cqads {
namespace {

// ---- TermDict -------------------------------------------------------------

TEST(TermDictTest, InternAndFind) {
  text::TermDict dict;
  const text::TermId a = dict.Intern("running");
  const text::TermId b = dict.Intern("cars");
  EXPECT_EQ(dict.Intern("running"), a);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Find("running"), a);
  EXPECT_EQ(dict.Find("cars"), b);
  EXPECT_EQ(dict.Find("absent"), text::kInvalidTerm);
  EXPECT_EQ(dict.term(a), "running");
}

TEST(TermDictTest, CachedDerivedForms) {
  text::TermDict dict;
  const text::TermId run = dict.Intern("running");
  const text::TermId the = dict.Intern("the");
  const text::TermId doors = dict.Intern("4-Doors");
  EXPECT_EQ(dict.stem(run), text::PorterStem("running"));
  EXPECT_TRUE(dict.is_stopword(the));
  EXPECT_FALSE(dict.is_stopword(run));
  EXPECT_EQ(dict.shorthand_norm(doors), text::NormalizeForShorthand("4-Doors"));
  EXPECT_EQ(dict.shorthand_norm(doors), "4door");
}

TEST(TermDictTest, FreezeResolvesStemLinks) {
  text::TermDict dict;
  const text::TermId run_stem = dict.Intern("run");
  const text::TermId running = dict.Intern("running");
  const text::TermId orphan = dict.Intern("happily");  // stem not interned
  dict.Freeze();
  EXPECT_TRUE(dict.frozen());
  EXPECT_EQ(dict.stem_id(running), run_stem);
  EXPECT_EQ(dict.stem_id(orphan), text::kInvalidTerm);
  // FindStemOf: interned word fast path and raw-word slow path agree.
  EXPECT_EQ(dict.FindStemOf("running"), run_stem);
  EXPECT_EQ(dict.FindStemOf("runs"), run_stem);  // never interned
  EXPECT_EQ(dict.FindStemOf("xylophone"), text::kInvalidTerm);
}

TEST(TermDictTest, SortedInterningYieldsLexicographicIds) {
  text::TermDict dict;
  std::vector<std::string> sorted = {"alpha", "beta", "gamma", "zeta"};
  for (const auto& s : sorted) dict.Intern(s);
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    EXPECT_LT(dict.Find(sorted[i]), dict.Find(sorted[i + 1]));
  }
}

// ---- matrices: id path == string path ------------------------------------

class SubstrateWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 424242;
    options.ads_per_domain = 150;
    options.sessions_per_domain = 300;
    options.corpus_docs_per_domain = 60;
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static datagen::World* world_;
};

datagen::World* SubstrateWorldTest::world_ = nullptr;

TEST_F(SubstrateWorldTest, SnapshotPublishesTermDicts) {
  const auto snapshot = world_->engine().snapshot();
  // Shared-corpus instance: the WS matrix's stem vocabulary.
  ASSERT_NE(snapshot->shared_terms(), nullptr);
  EXPECT_EQ(snapshot->shared_terms(), &world_->ws_matrix().term_dict());
  EXPECT_TRUE(snapshot->shared_terms()->frozen());
  // Per-domain instances alias the lexicon's dict (no copy) and survive
  // runtime generations that share the lexicon.
  for (const auto& domain : world_->domains()) {
    const auto* rt = snapshot->runtime(domain);
    ASSERT_NE(rt, nullptr);
    ASSERT_NE(rt->terms, nullptr) << domain;
    EXPECT_EQ(rt->terms.get(), &rt->lexicon->terms()) << domain;
    EXPECT_TRUE(rt->terms->frozen()) << domain;
    // Every trie keyword is interned with its cached derived forms.
    const auto& flat = rt->lexicon->flat_trie();
    for (const auto& [kw, handle] :
         flat.Completions(flat.Root(), "", 1u << 20)) {
      (void)handle;
      ASSERT_NE(rt->terms->Find(kw), text::kInvalidTerm) << kw;
    }
  }
}

TEST_F(SubstrateWorldTest, WsIdLookupsMatchStringLookups) {
  const wordsim::WsMatrix& ws = world_->ws_matrix();
  ASSERT_GT(ws.vocabulary_size(), 0u);
  ASSERT_GT(ws.pair_count(), 0u);
  const text::TermDict& dict = *world_->engine().snapshot()->shared_terms();
  ASSERT_TRUE(dict.frozen());

  std::mt19937 rng(99);
  auto rand_id = [&] {
    return static_cast<text::TermId>(rng() % dict.size());
  };
  for (int i = 0; i < 2000; ++i) {
    const text::TermId a = rand_id();
    const text::TermId b = rng() % 7 == 0 ? a : rand_id();
    const std::string& sa = dict.term(a);
    const std::string& sb = dict.term(b);
    // Vocabulary entries are already stems; the string path re-stems them,
    // so compare through SimStemmed (the hoisted legacy entry point).
    EXPECT_DOUBLE_EQ(ws.SimById(a, b), ws.SimStemmed(sa, sb)) << sa << "/" << sb;
    EXPECT_DOUBLE_EQ(ws.SimById(a, b), ws.SimById(b, a));  // symmetric
  }
  // Unknown words: invalid ids on either side yield 0, equal raw strings 1.
  EXPECT_EQ(ws.Resolve("zzzzqqq"), text::kInvalidTerm);
  EXPECT_DOUBLE_EQ(ws.Sim("zzzzqqq", "zzzzqqq"), 1.0);
  EXPECT_DOUBLE_EQ(ws.SimById(text::kInvalidTerm, 0), 0.0);
  EXPECT_DOUBLE_EQ(ws.SimById(0, text::kInvalidTerm), 0.0);

  // MostSimilar: the string form re-stems its input (seed semantics), so it
  // equals the id form exactly when the vocabulary stem is a stemming fixed
  // point; in general it equals the id form of the re-resolved input.
  for (int i = 0; i < 50; ++i) {
    const text::TermId a = rand_id();
    auto by_id = ws.MostSimilarById(a, 10);
    const std::string& term = dict.term(a);
    if (text::PorterStem(term) == term) {
      EXPECT_EQ(by_id, ws.MostSimilar(term, 10));
    }
    EXPECT_EQ(ws.MostSimilar(term, 10),
              ws.MostSimilarById(ws.Resolve(term), 10));
    EXPECT_LE(by_id.size(), std::min<std::size_t>(10, ws.RowDegree(a)));
  }
}

TEST_F(SubstrateWorldTest, TiIdLookupsMatchStringLookups) {
  for (const auto& domain : world_->domains()) {
    const auto* rt = world_->engine().runtime(domain);
    ASSERT_NE(rt, nullptr);
    const qlog::TiMatrix& ti = *rt->ti_matrix;
    if (ti.pair_count() == 0) continue;
    const text::TermDict& dict = ti.term_dict();

    std::mt19937 rng(7 + dict.size());
    auto rand_id = [&] {
      return static_cast<text::TermId>(rng() % dict.size());
    };
    for (int i = 0; i < 1000; ++i) {
      const text::TermId a = rand_id();
      const text::TermId b = rng() % 7 == 0 ? a : rand_id();
      EXPECT_DOUBLE_EQ(ti.SimById(a, b), ti.Sim(dict.term(a), dict.term(b)));
      EXPECT_DOUBLE_EQ(ti.SimById(a, b), ti.SimById(b, a));
    }
    // A == B and unknown values score 0 through both paths.
    const std::string& v0 = dict.term(0);
    EXPECT_DOUBLE_EQ(ti.Sim(v0, v0), 0.0);
    EXPECT_DOUBLE_EQ(ti.SimById(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(ti.Sim("no such value", v0), 0.0);

    for (int i = 0; i < 25; ++i) {
      const text::TermId a = rand_id();
      EXPECT_EQ(ti.MostSimilarById(a, 5), ti.MostSimilar(dict.term(a), 5));
    }

    // AllPairs enumerates the lexicographic upper triangle.
    auto pairs = ti.AllPairs();
    EXPECT_EQ(pairs.size(), ti.pair_count());
    for (std::size_t i = 1; i < pairs.size(); ++i) {
      EXPECT_LE(std::make_pair(std::get<0>(pairs[i - 1]),
                               std::get<1>(pairs[i - 1])),
                std::make_pair(std::get<0>(pairs[i]), std::get<1>(pairs[i])));
    }
    for (const auto& [a, b, sim] : pairs) {
      EXPECT_LT(a, b);
      EXPECT_DOUBLE_EQ(ti.Sim(a, b), sim);
    }
  }
}

// ---- engine parity: substrate on vs off ----------------------------------

class SubstrateParityTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 20111130;
    options.ads_per_domain = 120;
    options.sessions_per_domain = 200;
    options.corpus_docs_per_domain = 40;
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static datagen::World* world_;
};

datagen::World* SubstrateParityTest::world_ = nullptr;

TEST_P(SubstrateParityTest, AskByteIdenticalOnAndOff) {
  const std::string& domain = GetParam();
  auto& engine = world_->mutable_engine();
  const auto* spec = world_->spec(domain);
  ASSERT_NE(spec, nullptr);

  // Generated question stream for this domain (clean + noisy shapes).
  Rng rng(555);
  auto questions = datagen::GenerateQuestions(
      *spec, *world_->table(domain), 60, datagen::QuestionGenOptions(), &rng);

  core::EngineOptions on;  // defaults: use_term_substrate = true
  core::EngineOptions off;
  off.use_term_substrate = false;

  std::vector<std::string> on_answers, off_answers;
  engine.SetOptions(on);
  for (const auto& q : questions) {
    auto r = engine.AskInDomain(domain, q.text);
    on_answers.push_back(r.ok() ? core::CanonicalAskResultString(r.value())
                                : "ERROR: " + r.status().ToString());
  }
  engine.SetOptions(off);
  for (const auto& q : questions) {
    auto r = engine.AskInDomain(domain, q.text);
    off_answers.push_back(r.ok() ? core::CanonicalAskResultString(r.value())
                                 : "ERROR: " + r.status().ToString());
  }
  engine.SetOptions(on);

  ASSERT_EQ(on_answers.size(), off_answers.size());
  for (std::size_t i = 0; i < on_answers.size(); ++i) {
    EXPECT_EQ(on_answers[i], off_answers[i])
        << domain << " q" << i << ": " << questions[i].text;
  }
}

TEST_P(SubstrateParityTest, SimScorerMatchesSeedScoring) {
  const std::string& domain = GetParam();
  const auto snapshot = world_->engine().snapshot();
  const auto* rt = snapshot->runtime(domain);
  ASSERT_NE(rt, nullptr);
  const auto* spec = world_->spec(domain);

  Rng rng(777);
  auto questions = datagen::GenerateQuestions(
      *spec, *world_->table(domain), 40, datagen::QuestionGenOptions(), &rng);

  const core::SimilarityContext sim = snapshot->MakeSimilarityContext(*rt);
  for (const auto& q : questions) {
    auto parsed = world_->engine().Parse(domain, q.text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const auto& units = parsed.value().assembled.units;
    if (units.empty()) continue;

    core::SimScorer scorer(rt->table->schema(), units, sim);
    for (db::RowId row = 0; row < rt->table->num_rows(); row += 7) {
      for (std::size_t dropped = 0; dropped < units.size(); ++dropped) {
        const core::PartialScore seed = core::ScorePartialMatch(
            *rt->table, row, units, dropped, sim);
        core::PartialScore ids = scorer.Score(*rt->table, row, dropped);
        ASSERT_DOUBLE_EQ(seed.rank_sim, ids.rank_sim)
            << domain << " '" << q.text << "' row " << row;
        ASSERT_DOUBLE_EQ(seed.unit_sim, ids.unit_sim)
            << domain << " '" << q.text << "' row " << row;
        ASSERT_EQ(seed.measure, ids.measure);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDomains, SubstrateParityTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> names;
      for (const auto& spec : datagen::AllDomainSpecs()) {
        names.push_back(spec.schema.domain());
      }
      return names;
    }()));

}  // namespace
}  // namespace cqads
