#include "text/similar_text.h"

#include <gtest/gtest.h>

namespace cqads::text {
namespace {

TEST(SimilarTextTest, IdenticalStrings) {
  EXPECT_EQ(SimilarTextChars("honda", "honda"), 5u);
  EXPECT_DOUBLE_EQ(SimilarTextPercent("honda", "honda"), 100.0);
}

TEST(SimilarTextTest, EmptyStrings) {
  EXPECT_EQ(SimilarTextChars("", "abc"), 0u);
  EXPECT_DOUBLE_EQ(SimilarTextPercent("", ""), 100.0);
  EXPECT_DOUBLE_EQ(SimilarTextPercent("", "abc"), 0.0);
}

TEST(SimilarTextTest, NoCommonCharacters) {
  EXPECT_EQ(SimilarTextChars("abc", "xyz"), 0u);
}

// PHP reference: similar_text("World","Word") == 4.
TEST(SimilarTextTest, PhpReferenceWorldWord) {
  EXPECT_EQ(SimilarTextChars("world", "word"), 4u);
}

// PHP reference: the exact php_similar_str recursion yields 1 — only the
// "l" block survives; its flanks share nothing. (The "2" often quoted
// online does not match PHP's actual algorithm.)
TEST(SimilarTextTest, PhpReferenceHelloWorld) {
  EXPECT_EQ(SimilarTextChars("hello", "world"), 1u);
}

TEST(SimilarTextTest, TranspositionScoresHigh) {
  // "accorr" vs "accord": longest common block "accor" (5).
  EXPECT_EQ(SimilarTextChars("accorr", "accord"), 5u);
  EXPECT_GT(SimilarTextPercent("accorr", "accord"), 80.0);
}

TEST(SimilarTextTest, MissingLetter) {
  EXPECT_GT(SimilarTextPercent("hnda", "honda"), 85.0);
}

TEST(SimilarTextTest, Symmetric) {
  EXPECT_EQ(SimilarTextChars("mazda", "madza"),
            SimilarTextChars("madza", "mazda"));
}

TEST(SimilarTextTest, PercentBounded) {
  const char* words[] = {"a", "honda", "hondaaccord", "xyz", "civic"};
  for (const char* a : words) {
    for (const char* b : words) {
      double p = SimilarTextPercent(a, b);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 100.0);
    }
  }
}

TEST(SimilarTextTest, CharsAtMostShorterLength) {
  EXPECT_LE(SimilarTextChars("hi", "hondaaccordcivic"), 2u);
}

TEST(SimilarTextTest, SpellingCandidateOrdering) {
  // The misspelling "acord" is closer to "accord" than to "camry".
  EXPECT_GT(SimilarTextPercent("acord", "accord"),
            SimilarTextPercent("acord", "camry"));
}

}  // namespace
}  // namespace cqads::text
