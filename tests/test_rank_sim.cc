#include "core/rank_sim.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "qlog/log_generator.h"
#include "test_fixtures.h"

namespace cqads::core {
namespace {

TEST(NumSimTest, Equation4) {
  // Example 4: Num_Sim(10000, 7500) = 0.75; Num_Sim(10000, 11000) = 0.90
  // with a price range of 10000.
  EXPECT_DOUBLE_EQ(NumSim(10000, 7500, 10000), 0.75);
  EXPECT_DOUBLE_EQ(NumSim(10000, 11000, 10000), 0.90);
}

TEST(NumSimTest, ClampedToUnitInterval) {
  EXPECT_DOUBLE_EQ(NumSim(0, 100000, 10), 0.0);
  EXPECT_DOUBLE_EQ(NumSim(5, 5, 10), 1.0);
}

TEST(NumSimTest, ZeroRangeYieldsZero) {
  EXPECT_DOUBLE_EQ(NumSim(5, 5, 0), 0.0);
  EXPECT_DOUBLE_EQ(NumSim(5, 5, -1), 0.0);
}

TEST(ComputeAttrRangesTest, TopBottomTenAverages) {
  db::Table table = cqads::testing::MiniCarTable();
  auto ranges = ComputeAttrRanges(table);
  ASSERT_EQ(ranges.size(), table.schema().num_attributes());
  EXPECT_EQ(ranges[0], 0.0);  // categorical: no range
  EXPECT_GT(ranges[3], 0.0);  // price
  // With 12 rows and k=10, range < full spread but positive.
  EXPECT_LT(ranges[3], 42000.0 - 5500.0 + 1.0);
}

class RankSimTest : public ::testing::Test {
 protected:
  RankSimTest() : table_(cqads::testing::MiniCarTable()) {
    // TI matrix: midsize sedans cluster together.
    qlog::LogGenSpec spec;
    spec.values = {"honda accord", "toyota camry", "chevy malibu",
                   "ford focus", "bmw m3", "ford mustang"};
    spec.cluster_of = {0, 0, 0, 1, 2, 2};
    spec.num_sessions = 600;
    Rng rng(123);
    ti_ = qlog::TiMatrix::Build(qlog::GenerateQueryLog(spec, &rng));

    std::vector<std::string> corpus;
    for (int i = 0; i < 6; ++i) {
      corpus.push_back(
          "blue navy paint excellent condition owner garage kept quality "
          "clean original deal warranty gold tan interior");
    }
    ws_ = wordsim::WsMatrix::Build(corpus);

    ctx_.ti = &ti_;
    ctx_.ws = &ws_;
    ctx_.attr_ranges = ComputeAttrRanges(table_);
  }

  MatchUnit IdentityUnit(const char* make, const char* model) {
    MatchUnit u;
    u.kind = MatchUnit::Kind::kIdentity;
    u.value = std::string(make) + " " + model;
    Condition c1;
    c1.kind = Condition::Kind::kTypeI;
    c1.attr = 0;
    c1.value = make;
    Condition c2 = c1;
    c2.attr = 1;
    c2.value = model;
    u.conds = {c1, c2};
    u.attr = 1;
    return u;
  }

  MatchUnit ColorUnit(const char* color) {
    MatchUnit u;
    u.kind = MatchUnit::Kind::kTypeII;
    u.attr = 5;
    u.value = color;
    Condition c;
    c.kind = Condition::Kind::kTypeII;
    c.attr = 5;
    c.value = color;
    u.conds = {c};
    return u;
  }

  MatchUnit PriceUnit(db::CompareOp op, double lo, double hi = 0) {
    MatchUnit u;
    u.kind = MatchUnit::Kind::kTypeIII;
    u.attr = 3;
    Condition c;
    c.kind = Condition::Kind::kTypeIIIBound;
    c.attr = 3;
    c.op = op;
    c.lo = lo;
    c.hi = hi;
    u.conds = {c};
    return u;
  }

  db::Table table_;
  qlog::TiMatrix ti_;
  wordsim::WsMatrix ws_;
  SimilarityContext ctx_;
};

TEST_F(RankSimTest, IdentityExactMatchScoresOne) {
  auto unit = IdentityUnit("honda", "accord");
  EXPECT_DOUBLE_EQ(UnitSimilarity(table_, 0, unit, ctx_), 1.0);
}

TEST_F(RankSimTest, SameSegmentBeatsCrossSegment) {
  auto unit = IdentityUnit("honda", "accord");
  // Row 5 = toyota camry (same latent segment), row 9 = bmw m3.
  double camry = UnitSimilarity(table_, 5, unit, ctx_);
  double bmw = UnitSimilarity(table_, 9, unit, ctx_);
  EXPECT_GT(camry, bmw);
  EXPECT_GT(camry, 0.0);
}

TEST_F(RankSimTest, FeatSimRelatedColorBeatsUnrelated) {
  auto unit = ColorUnit("blue");
  // Row 2 is gold; rows 0/1 are blue (exact). Navy would be related, but
  // the fixture has none; check blue > gold at least via corpus structure:
  double gold = UnitSimilarity(table_, 2, unit, ctx_);
  double blue = UnitSimilarity(table_, 0, unit, ctx_);
  EXPECT_DOUBLE_EQ(blue, 1.0);
  EXPECT_LT(gold, 1.0);
}

TEST_F(RankSimTest, NumSimCloserPriceScoresHigher) {
  auto unit = PriceUnit(db::CompareOp::kLt, 15000);
  // accord at 16536 (row 1) vs bmw at 42000 (row 9).
  double near = UnitSimilarity(table_, 1, unit, ctx_);
  double far = UnitSimilarity(table_, 9, unit, ctx_);
  EXPECT_GT(near, far);
}

TEST_F(RankSimTest, BetweenUsesMidpoint) {
  auto unit = PriceUnit(db::CompareOp::kBetween, 8000, 10000);
  // Midpoint 9000: row 0 (8900) nearly exact.
  EXPECT_GT(UnitSimilarity(table_, 0, unit, ctx_), 0.95);
}

TEST_F(RankSimTest, ScoreAddsNMinusOne) {
  std::vector<MatchUnit> units = {IdentityUnit("honda", "accord"),
                                  ColorUnit("blue"),
                                  PriceUnit(db::CompareOp::kLt, 15000)};
  // Row 5 (camry, blue, 8561): fails only the identity unit.
  auto score = ScorePartialMatch(table_, 5, units, 0, ctx_);
  EXPECT_GE(score.rank_sim, 2.0);
  EXPECT_LE(score.rank_sim, 3.0);
  EXPECT_EQ(score.measure, "TI_Sim on Make and Model");
}

TEST_F(RankSimTest, MeasureLabels) {
  std::vector<MatchUnit> units = {IdentityUnit("honda", "accord"),
                                  ColorUnit("blue"),
                                  PriceUnit(db::CompareOp::kLt, 15000)};
  EXPECT_EQ(ScorePartialMatch(table_, 1, units, 1, ctx_).measure,
            "Feat_Sim on Color");
  EXPECT_EQ(ScorePartialMatch(table_, 1, units, 2, ctx_).measure,
            "Num_Sim on Price");
}

TEST_F(RankSimTest, Table2OrderingShape) {
  // The Table 2 question: "Honda Accord blue less than 15000 dollars".
  // A same-segment sedan missing only the identity should outrank a record
  // missing the identity from a far segment.
  std::vector<MatchUnit> units = {IdentityUnit("honda", "accord"),
                                  ColorUnit("blue"),
                                  PriceUnit(db::CompareOp::kLt, 15000)};
  auto malibu = ScorePartialMatch(table_, 4, units, 0, ctx_);  // chevy malibu blue
  auto camry = ScorePartialMatch(table_, 5, units, 0, ctx_);   // toyota camry blue
  EXPECT_GT(malibu.rank_sim, 2.0);
  EXPECT_GT(camry.rank_sim, 2.0);
  EXPECT_EQ(malibu.measure, "TI_Sim on Make and Model");
}

TEST_F(RankSimTest, NullContextsDegradeGracefully) {
  SimilarityContext empty;
  empty.attr_ranges = ComputeAttrRanges(table_);
  auto unit = IdentityUnit("honda", "accord");
  EXPECT_DOUBLE_EQ(UnitSimilarity(table_, 5, unit, empty), 0.0);
  // Num_Sim still works without matrices.
  auto price_unit = PriceUnit(db::CompareOp::kLt, 15000);
  EXPECT_GT(UnitSimilarity(table_, 1, price_unit, empty), 0.0);
}

}  // namespace
}  // namespace cqads::core
