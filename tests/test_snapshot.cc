// Persistent-snapshot round-trips: the xxhash implementation against the
// reference vectors, the section container, per-structure differential
// tests (mapped view == heap-built view, element for element), and the
// engine-level reload byte-parity gate over every generated domain.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ask_types.h"
#include "core/cqads_engine.h"
#include "datagen/world.h"
#include "db/table.h"
#include "eval/experiments.h"
#include "snapshot/io.h"
#include "snapshot/serde.h"
#include "snapshot/snapshot_file.h"
#include "snapshot/xxhash64.h"
#include "test_fixtures.h"
#include "text/term_dict.h"
#include "trie/flat_trie.h"
#include "trie/keyword_trie.h"
#include "wordsim/ws_matrix.h"

namespace cqads {
namespace {

using snapshot::ByteReader;
using snapshot::ByteWriter;
using snapshot::SerdeAccess;
using snapshot::SnapshotFile;
using snapshot::SnapshotFileWriter;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "cqads_" + name;
}

// ------------------------------------------------------------------ xxhash

TEST(XxHash64, ReferenceVectors) {
  // Published XXH64 test vectors (seed 0).
  EXPECT_EQ(snapshot::XxHash64("", 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(snapshot::XxHash64("a", 1), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(snapshot::XxHash64("abc", 3), 0x44BC2CF5AD770999ULL);
}

TEST(XxHash64, SeedAndLengthSensitivity) {
  const std::string data(1021, 'x');  // crosses the 32-byte stripe path
  const auto h = snapshot::XxHash64(data.data(), data.size());
  EXPECT_NE(h, snapshot::XxHash64(data.data(), data.size() - 1));
  EXPECT_NE(h, snapshot::XxHash64(data.data(), data.size(), 1));
}

// --------------------------------------------------------------- container

TEST(SnapshotFile, SectionRoundTrip) {
  const std::string path = TempPath("container.snap");
  SnapshotFileWriter writer;
  ByteWriter a;
  a.WriteString("hello");
  a.WriteU64(42);
  writer.AddSection("alpha", std::move(a));
  ByteWriter b;
  std::vector<std::uint32_t> nums = {1, 2, 3, 5, 8, 13};
  b.WriteArray(nums.data(), nums.size());
  writer.AddSection("beta", std::move(b));

  auto size = writer.Finish(path);
  ASSERT_TRUE(size.ok()) << size.status().ToString();

  auto file = SnapshotFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file.value().header().section_count, 2u);
  EXPECT_EQ(file.value().header().file_size, size.value());

  auto ar = file.value().Reader("alpha");
  ASSERT_TRUE(ar.ok());
  std::string s;
  std::uint64_t v = 0;
  ASSERT_TRUE(ar.value().ReadString(&s).ok());
  ASSERT_TRUE(ar.value().ReadU64(&v).ok());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(v, 42u);

  auto br = file.value().Reader("beta");
  ASSERT_TRUE(br.ok());
  const std::uint32_t* p = nullptr;
  std::size_t n = 0;
  ASSERT_TRUE(br.value().ReadArray(&p, &n).ok());
  ASSERT_EQ(n, nums.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(p[i], nums[i]);
  // Adopted arrays must come back kArrayAlign-aligned off the mapping.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % snapshot::kArrayAlign, 0u);

  auto missing = file.value().Find("gamma");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(SnapshotFile, DeterministicBytes) {
  // Identical content twice → byte-identical files (the sorted-key-order
  // convention in serde plus a deterministic container).
  auto build = [](const std::string& path) {
    SnapshotFileWriter writer;
    ByteWriter w;
    auto table = testing::MiniCarTable();
    SerdeAccess::WriteTable(table, &w);
    writer.AddSection("t", std::move(w));
    auto r = writer.Finish(path);
    ASSERT_TRUE(r.ok());
  };
  const std::string p1 = TempPath("det1.snap"), p2 = TempPath("det2.snap");
  build(p1);
  build(p2);
  auto slurp = [](const std::string& path) {
    std::string out;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
  };
  EXPECT_EQ(slurp(p1), slurp(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

// ---------------------------------------------------- structure round-trips

// Writes one structure as a single-section snapshot and reopens it, so the
// read side exercises the real mmap arena (zero-copy views point into the
// mapping and the SnapshotFile keeps it alive).
class MappedSection {
 public:
  MappedSection(const std::string& name, ByteWriter writer)
      : path_(TempPath(name + ".snap")) {
    SnapshotFileWriter w;
    w.AddSection("s", std::move(writer));
    auto size = w.Finish(path_);
    EXPECT_TRUE(size.ok()) << size.status().ToString();
    auto file = SnapshotFile::Open(path_);
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    file_ = std::make_unique<SnapshotFile>(std::move(file).value());
  }
  ~MappedSection() { std::remove(path_.c_str()); }

  ByteReader reader() {
    auto r = file_->Reader("s");
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }
  snapshot::ArenaPtr owner() const { return file_->arena(); }

 private:
  std::string path_;
  std::unique_ptr<SnapshotFile> file_;
};

TEST(SerdeRoundTrip, TermDict) {
  text::TermDict dict;
  for (const char* w : {"honda", "accord", "the", "running", "dr.",
                        "4 wheel drive", "blue", "2007"}) {
    dict.Intern(w);
  }
  dict.Freeze();

  ByteWriter w;
  SerdeAccess::WriteTermDict(dict, &w);
  ByteReader r(w.buffer().data(), w.size(), "termdict");
  text::TermDict loaded;
  ASSERT_TRUE(SerdeAccess::ReadTermDict(&r, &loaded).ok());

  ASSERT_EQ(loaded.size(), dict.size());
  EXPECT_TRUE(loaded.frozen());
  for (text::TermId id = 0; id < dict.size(); ++id) {
    EXPECT_EQ(loaded.term(id), dict.term(id));
    EXPECT_EQ(loaded.stem(id), dict.stem(id));
    EXPECT_EQ(loaded.stem_id(id), dict.stem_id(id));
    EXPECT_EQ(loaded.is_stopword(id), dict.is_stopword(id));
    EXPECT_EQ(loaded.shorthand_norm(id), dict.shorthand_norm(id));
    EXPECT_EQ(loaded.Find(dict.term(id)), id);
  }
  EXPECT_EQ(loaded.Find("no-such-term"), text::kInvalidTerm);
}

TEST(SerdeRoundTrip, FlatTrie) {
  trie::KeywordTrie source;
  const std::vector<std::pair<std::string, std::int32_t>> kws = {
      {"honda", 1}, {"honda", 7}, {"hondo", 2}, {"accord", 3},
      {"accordion", 4}, {"a", 5}, {"power steering", 6}};
  for (const auto& [kw, h] : kws) source.Insert(kw, h);
  trie::FlatTrie built = trie::FlatTrie::Compile(source);

  ByteWriter w;
  SerdeAccess::WriteFlatTrie(built, &w);
  MappedSection sect("flattrie", std::move(w));
  ByteReader r = sect.reader();
  trie::FlatTrie loaded;
  ASSERT_TRUE(SerdeAccess::ReadFlatTrie(&r, sect.owner(), &loaded).ok());

  EXPECT_EQ(loaded.size(), built.size());
  EXPECT_EQ(loaded.node_count(), built.node_count());
  EXPECT_EQ(loaded.edge_count(), built.edge_count());
  for (const auto& [kw, h] : kws) {
    EXPECT_TRUE(loaded.Contains(kw)) << kw;
    auto span = loaded.Find(kw);
    auto ref = built.Find(kw);
    ASSERT_EQ(span.size(), ref.size()) << kw;
    for (std::size_t i = 0; i < span.size(); ++i) EXPECT_EQ(span[i], ref[i]);
  }
  EXPECT_FALSE(loaded.Contains("hond"));
  EXPECT_EQ(loaded.Completions(loaded.Root(), "", SIZE_MAX),
            built.Completions(built.Root(), "", SIZE_MAX));
  EXPECT_EQ(loaded.AllMatchLengths("accordion player", 0),
            built.AllMatchLengths("accordion player", 0));
}

TEST(SerdeRoundTrip, WsMatrixCsr) {
  const std::vector<std::string> corpus = {
      "honda accord blue automatic transmission",
      "honda civic red manual transmission",
      "toyota camry blue automatic power steering",
      "ford focus blue manual power steering cd player",
      "bmw black leather seats gps manual"};
  wordsim::WsMatrix built = wordsim::WsMatrix::Build(corpus);
  ASSERT_GT(built.pair_count(), 0u);

  ByteWriter w;
  SerdeAccess::WriteWsMatrix(built, &w);
  MappedSection sect("wsmatrix", std::move(w));
  ByteReader r = sect.reader();
  wordsim::WsMatrix loaded;
  ASSERT_TRUE(SerdeAccess::ReadWsMatrix(&r, sect.owner(), &loaded).ok());

  ASSERT_EQ(loaded.vocabulary_size(), built.vocabulary_size());
  EXPECT_EQ(loaded.pair_count(), built.pair_count());
  EXPECT_EQ(loaded.MaxSim(), built.MaxSim());
  // Every (id, id) similarity must match the heap-built matrix exactly —
  // the CSR arrays are adopted zero-copy out of the mapping.
  const auto n = static_cast<text::TermId>(built.vocabulary_size());
  for (text::TermId a = 0; a < n; ++a) {
    EXPECT_EQ(loaded.RowDegree(a), built.RowDegree(a));
    for (text::TermId b = 0; b < n; ++b) {
      EXPECT_EQ(loaded.SimById(a, b), built.SimById(a, b));
    }
  }
  EXPECT_EQ(loaded.MostSimilar("blue", 5), built.MostSimilar("blue", 5));
}

TEST(SerdeRoundTrip, TableColumnStoreAndIndexes) {
  db::Table built = testing::MiniCarTable();

  ByteWriter w;
  SerdeAccess::WriteTable(built, &w);
  MappedSection sect("table", std::move(w));
  ByteReader r = sect.reader();
  std::unique_ptr<db::Table> loaded;
  ASSERT_TRUE(SerdeAccess::ReadTable(&r, sect.owner(), &loaded).ok());

  ASSERT_EQ(loaded->num_rows(), built.num_rows());
  ASSERT_EQ(loaded->schema().attributes().size(),
            built.schema().attributes().size());
  EXPECT_TRUE(loaded->indexes_built());

  const std::size_t n_attrs = built.schema().attributes().size();
  for (db::RowId row = 0; row < built.num_rows(); ++row) {
    for (std::size_t a = 0; a < n_attrs; ++a) {
      EXPECT_TRUE(loaded->cell(row, a) == built.cell(row, a))
          << "row " << row << " attr " << a;
      EXPECT_EQ(loaded->CellElements(row, a), built.CellElements(row, a));
    }
    EXPECT_EQ(loaded->RowText(row), built.RowText(row));
  }

  // Access paths: presence and lookups must agree with the heap build.
  for (std::size_t a = 0; a < n_attrs; ++a) {
    ASSERT_EQ(loaded->hash_index(a) != nullptr,
              built.hash_index(a) != nullptr);
    ASSERT_EQ(loaded->sorted_index(a) != nullptr,
              built.sorted_index(a) != nullptr);
    ASSERT_EQ(loaded->ngram_index(a) != nullptr,
              built.ngram_index(a) != nullptr);
  }
  ASSERT_NE(loaded->hash_index(0), nullptr);  // make
  EXPECT_EQ(loaded->hash_index(0)->Lookup("honda"),
            built.hash_index(0)->Lookup("honda"));
  ASSERT_NE(loaded->sorted_index(3), nullptr);  // price
  EXPECT_EQ(loaded->sorted_index(3)->Range(6000, 9000),
            built.sorted_index(3)->Range(6000, 9000));
  ASSERT_NE(loaded->stats(), nullptr);

  // A mapped base is frozen: appending must fail loudly, not corrupt the
  // shared mapping.
  auto insert = loaded->Insert(built.row(0));
  EXPECT_FALSE(insert.ok());
  EXPECT_EQ(insert.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------ engine-level parity

class SnapshotEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 777;
    options.ads_per_domain = 160;
    options.sessions_per_domain = 300;
    options.corpus_docs_per_domain = 50;
    auto world = datagen::World::Build(options);
    ASSERT_TRUE(world.ok()) << world.status().ToString();
    world_ = std::move(world).value().release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static datagen::World* world_;
};

datagen::World* SnapshotEngineTest::world_ = nullptr;

TEST_F(SnapshotEngineTest, ReloadIsByteIdenticalAcrossAllDomains) {
  const std::string path = TempPath("engine.snap");
  ASSERT_TRUE(world_->engine().SaveSnapshot(path).ok());

  auto loaded = core::CqadsEngine::OpenSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const core::CqadsEngine& fresh = world_->engine();
  const core::CqadsEngine& reloaded = *loaded.value();

  ASSERT_EQ(reloaded.Domains(), fresh.Domains());

  auto questions = eval::GenerateSurveyQuestions(*world_, 12, 12, 660);
  std::size_t asked = 0, mismatches = 0;
  for (const auto& [domain, qs] : questions) {
    for (const auto& q : qs) {
      auto a = fresh.AskInDomain(domain, q.text);
      auto b = reloaded.AskInDomain(domain, q.text);
      ASSERT_EQ(a.ok(), b.ok()) << domain << ": " << q.text;
      if (!a.ok()) continue;
      ++asked;
      if (core::CanonicalAskResultString(a.value()) !=
          core::CanonicalAskResultString(b.value())) {
        ++mismatches;
        ADD_FAILURE() << "answer mismatch [" << domain << "] " << q.text;
      }
    }
  }
  EXPECT_GT(asked, 50u);
  EXPECT_EQ(mismatches, 0u);

  // Full pipeline (classifier included) must agree too.
  for (const auto& [domain, qs] : questions) {
    if (qs.empty()) continue;
    auto a = fresh.Ask(qs.front().text);
    auto b = reloaded.Ask(qs.front().text);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(core::CanonicalAskResultString(a.value()),
                core::CanonicalAskResultString(b.value()));
    }
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotEngineTest, TwoOpensShareOneFile) {
  // The multi-process serving story in miniature: two independent opens of
  // the same snapshot (two MappedArenas over one page-cache-resident file)
  // both answer, identically.
  const std::string path = TempPath("shared.snap");
  ASSERT_TRUE(world_->engine().SaveSnapshot(path).ok());
  auto e1 = core::CqadsEngine::OpenSnapshot(path);
  auto e2 = core::CqadsEngine::OpenSnapshot(path);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  const std::string domain = world_->domains().front();
  auto questions = eval::GenerateSurveyQuestions(*world_, 3, 3, 661);
  for (const auto& q : questions[domain]) {
    auto a = e1.value()->AskInDomain(domain, q.text);
    auto b = e2.value()->AskInDomain(domain, q.text);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(core::CanonicalAskResultString(a.value()),
                core::CanonicalAskResultString(b.value()));
    }
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotEngineTest, IngestCompactResaveRoundTrips) {
  const std::string path = TempPath("ingest.snap");
  const std::string path2 = TempPath("ingest2.snap");
  ASSERT_TRUE(world_->engine().SaveSnapshot(path).ok());
  auto loaded = core::CqadsEngine::OpenSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  core::CqadsEngine& engine = *loaded.value();

  // The mapped base stays read-only: ingest lands in a heap-built delta.
  const std::string domain = world_->domains().front();
  db::Record record = world_->table(domain)->row(0);
  auto row = engine.IngestAd(domain, std::move(record));
  ASSERT_TRUE(row.ok()) << row.status().ToString();

  // A snapshot always represents a fully-merged base.
  auto save = engine.SaveSnapshot(path2);
  ASSERT_FALSE(save.ok());
  EXPECT_EQ(save.code(), StatusCode::kFailedPrecondition);

  // Compaction republishes a heap-built generation; resave round-trips.
  ASSERT_TRUE(engine.CompactDomain(domain).ok());
  ASSERT_TRUE(engine.SaveSnapshot(path2).ok());
  auto reloaded = core::CqadsEngine::OpenSnapshot(path2);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  auto questions = eval::GenerateSurveyQuestions(*world_, 5, 5, 662);
  for (const auto& q : questions[domain]) {
    auto a = engine.AskInDomain(domain, q.text);
    auto b = reloaded.value()->AskInDomain(domain, q.text);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(core::CanonicalAskResultString(a.value()),
                core::CanonicalAskResultString(b.value()));
    }
  }
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

}  // namespace
}  // namespace cqads
