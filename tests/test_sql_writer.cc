#include "db/sql_writer.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace cqads::db {
namespace {

Predicate TextEq(std::size_t attr, const char* value) {
  Predicate p;
  p.attr = attr;
  p.op = CompareOp::kEq;
  p.value = Value::Text(value);
  return p;
}

TEST(SqlWriterTest, Example7NestedSubqueries) {
  // §4.5 Example 7: "Do you have automatic blue cars?"
  Schema schema = cqads::testing::MiniCarSchema();
  Query q;
  q.where = Expr::MakeAnd({Expr::MakePredicate(TextEq(6, "automatic")),
                           Expr::MakePredicate(TextEq(5, "blue"))});
  EXPECT_EQ(WriteSql(schema, q),
            "SELECT * FROM Car_Ads WHERE "
            "Car_ID IN (SELECT Car_ID FROM Car_Ads C WHERE "
            "C.Transmission = 'automatic') AND "
            "Car_ID IN (SELECT Car_ID FROM Car_Ads C WHERE "
            "C.Color = 'blue') LIMIT 30");
}

TEST(SqlWriterTest, PredicateRenderings) {
  Schema schema = cqads::testing::MiniCarSchema();
  Predicate lt;
  lt.attr = 3;
  lt.op = CompareOp::kLt;
  lt.value = Value::Int(15000);
  EXPECT_EQ(WritePredicate(schema, lt), "C.Price < 15000");

  Predicate between;
  between.attr = 3;
  between.op = CompareOp::kBetween;
  between.value = Value::Int(2000);
  between.value_hi = Value::Int(7000);
  EXPECT_EQ(WritePredicate(schema, between),
            "C.Price BETWEEN 2000 AND 7000");

  Predicate like;
  like.attr = 9;
  like.op = CompareOp::kContains;
  like.value = Value::Text("gps");
  EXPECT_EQ(WritePredicate(schema, like), "C.Features LIKE '%gps%'");

  Predicate ne;
  ne.attr = 5;
  ne.op = CompareOp::kNe;
  ne.value = Value::Text("blue");
  EXPECT_EQ(WritePredicate(schema, ne), "C.Color <> 'blue'");
}

TEST(SqlWriterTest, NotRendersAsNotIn) {
  Schema schema = cqads::testing::MiniCarSchema();
  Query q;
  q.where = Expr::MakeNot(Expr::MakePredicate(TextEq(5, "blue")));
  EXPECT_EQ(WriteSql(schema, q),
            "SELECT * FROM Car_Ads WHERE "
            "Car_ID NOT IN (SELECT Car_ID FROM Car_Ads C WHERE "
            "C.Color = 'blue') LIMIT 30");
}

TEST(SqlWriterTest, OrGroupsParenthesized) {
  Schema schema = cqads::testing::MiniCarSchema();
  Query q;
  q.where = Expr::MakeOr(
      {Expr::MakeAnd({Expr::MakePredicate(TextEq(0, "toyota")),
                      Expr::MakePredicate(TextEq(1, "corolla"))}),
       Expr::MakeAnd({Expr::MakePredicate(TextEq(0, "honda")),
                      Expr::MakePredicate(TextEq(1, "accord"))})});
  std::string sql = WriteSql(schema, q);
  EXPECT_NE(sql.find(") OR ("), std::string::npos);
  EXPECT_NE(sql.find("C.Make = 'toyota'"), std::string::npos);
  EXPECT_NE(sql.find("C.Model = 'accord'"), std::string::npos);
}

TEST(SqlWriterTest, SuperlativeRendersOrderBy) {
  Schema schema = cqads::testing::MiniCarSchema();
  Query q;
  q.where = Expr::MakePredicate(TextEq(0, "honda"));
  q.superlative = Superlative{3, true};
  std::string sql = WriteSql(schema, q);
  EXPECT_NE(sql.find("ORDER BY Price ASC LIMIT 30"), std::string::npos);

  q.superlative = Superlative{2, false};
  sql = WriteSql(schema, q);
  EXPECT_NE(sql.find("ORDER BY Year DESC"), std::string::npos);
}

TEST(SqlWriterTest, FlatSqlSingleWhere) {
  Schema schema = cqads::testing::MiniCarSchema();
  Query q;
  q.where = Expr::MakeAnd({Expr::MakePredicate(TextEq(0, "honda")),
                           Expr::MakePredicate(TextEq(5, "blue"))});
  EXPECT_EQ(WriteFlatSql(schema, q),
            "SELECT * FROM Car_Ads WHERE (C.Make = 'honda') AND "
            "(C.Color = 'blue') LIMIT 30");
}

TEST(SqlWriterTest, NoWhereClause) {
  Schema schema = cqads::testing::MiniCarSchema();
  Query q;
  EXPECT_EQ(WriteSql(schema, q), "SELECT * FROM Car_Ads LIMIT 30");
}

TEST(SqlWriterTest, QuotesEscapedInLiterals) {
  Schema schema = cqads::testing::MiniCarSchema();
  Query q;
  q.where = Expr::MakePredicate(TextEq(1, "o'neil"));
  EXPECT_NE(WriteSql(schema, q).find("'o''neil'"), std::string::npos);
}

}  // namespace
}  // namespace cqads::db
