// Prepared-query cache unit tests: normalization, hit/miss accounting,
// LRU eviction order, snapshot-version staleness, and concurrent access.
#include "serve/prepared_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace cqads::serve {
namespace {

PreparedQueryCache::ParsedPtr MakeParsed(const std::string& sql) {
  auto parsed = std::make_shared<core::ParsedQuestion>();
  parsed->sql = sql;
  return parsed;
}

TEST(NormalizeQuestionTest, LowercasesAndCollapsesWhitespace) {
  EXPECT_EQ(PreparedQueryCache::NormalizeQuestion("  Red  HONDA \t Accord\n"),
            "red honda accord");
  EXPECT_EQ(PreparedQueryCache::NormalizeQuestion("red honda accord"),
            "red honda accord");
  EXPECT_EQ(PreparedQueryCache::NormalizeQuestion(""), "");
  EXPECT_EQ(PreparedQueryCache::NormalizeQuestion("   "), "");
}

TEST(PreparedQueryCacheTest, MissThenHit) {
  PreparedQueryCache cache;
  EXPECT_EQ(cache.Get("cars", "red honda", 1), nullptr);
  cache.Put("cars", "red honda", 1, MakeParsed("SELECT 1"));
  auto hit = cache.Get("cars", "red honda", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->sql, "SELECT 1");

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PreparedQueryCacheTest, DomainsAreDistinctKeys) {
  PreparedQueryCache cache;
  cache.Put("cars", "red", 1, MakeParsed("cars-sql"));
  cache.Put("boats", "red", 1, MakeParsed("boats-sql"));
  EXPECT_EQ(cache.Get("cars", "red", 1)->sql, "cars-sql");
  EXPECT_EQ(cache.Get("boats", "red", 1)->sql, "boats-sql");
}

TEST(PreparedQueryCacheTest, StaleSnapshotVersionMisses) {
  PreparedQueryCache cache;
  cache.Put("cars", "red honda", 1, MakeParsed("v1"));
  EXPECT_EQ(cache.Get("cars", "red honda", 2), nullptr);
  // Refreshing with the new version replaces the stale entry in place.
  cache.Put("cars", "red honda", 2, MakeParsed("v2"));
  ASSERT_NE(cache.Get("cars", "red honda", 2), nullptr);
  EXPECT_EQ(cache.Get("cars", "red honda", 2)->sql, "v2");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PreparedQueryCacheTest, StalePutDoesNotDowngradeFresherEntry) {
  PreparedQueryCache cache;
  cache.Put("cars", "q", 2, MakeParsed("v2"));
  // A straggler request pinned on the old snapshot finishes late; its Put
  // must not stamp the entry back to v1 and cause v2 miss churn.
  cache.Put("cars", "q", 1, MakeParsed("v1-straggler"));
  auto hit = cache.Get("cars", "q", 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->sql, "v2");
  EXPECT_EQ(cache.Get("cars", "q", 1), nullptr);
}

TEST(PreparedQueryCacheTest, EvictsLeastRecentlyUsed) {
  PreparedQueryCache::Options options;
  options.capacity = 2;
  options.num_shards = 1;  // single shard: deterministic LRU order
  PreparedQueryCache cache(options);

  cache.Put("cars", "a", 1, MakeParsed("a"));
  cache.Put("cars", "b", 1, MakeParsed("b"));
  ASSERT_NE(cache.Get("cars", "a", 1), nullptr);  // a is now MRU
  cache.Put("cars", "c", 1, MakeParsed("c"));     // evicts b

  EXPECT_NE(cache.Get("cars", "a", 1), nullptr);
  EXPECT_EQ(cache.Get("cars", "b", 1), nullptr);
  EXPECT_NE(cache.Get("cars", "c", 1), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(PreparedQueryCacheTest, ClearEmptiesAllShards) {
  PreparedQueryCache cache;
  for (int i = 0; i < 64; ++i) {
    cache.Put("cars", "q" + std::to_string(i), 1, MakeParsed("x"));
  }
  EXPECT_EQ(cache.stats().entries, 64u);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Get("cars", "q0", 1), nullptr);
}

TEST(PreparedQueryCacheTest, CapacitySplitsAcrossShards) {
  PreparedQueryCache::Options options;
  options.capacity = 8;
  options.num_shards = 4;
  PreparedQueryCache cache(options);
  for (int i = 0; i < 1000; ++i) {
    cache.Put("cars", "q" + std::to_string(i), 1, MakeParsed("x"));
  }
  // Each shard holds at most capacity/num_shards entries.
  EXPECT_LE(cache.stats().entries, 8u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(PreparedQueryCacheTest, ConcurrentMixedTrafficIsSafe) {
  PreparedQueryCache::Options options;
  options.capacity = 128;
  options.num_shards = 8;
  PreparedQueryCache cache(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string q = "q" + std::to_string((t * 31 + i) % 200);
        if (auto hit = cache.Get("cars", q, 1)) {
          EXPECT_EQ(hit->sql, q);
        } else {
          cache.Put("cars", q, 1, MakeParsed(q));
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.entries, 128u);
}

}  // namespace
}  // namespace cqads::serve
