#include "core/cqads_engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "qlog/log_generator.h"
#include "test_fixtures.h"

namespace cqads::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : table_(cqads::testing::MiniCarTable()) {
    qlog::LogGenSpec spec;
    spec.values = {"honda accord", "toyota camry", "chevy malibu",
                   "ford focus",   "honda civic",  "bmw m3"};
    spec.cluster_of = {0, 0, 0, 1, 1, 2};
    spec.num_sessions = 500;
    Rng rng(99);
    qlog::TiMatrix ti =
        qlog::TiMatrix::Build(qlog::GenerateQueryLog(spec, &rng));

    std::vector<std::string> corpus;
    for (int i = 0; i < 5; ++i) {
      corpus.push_back(
          "blue navy paint garage kept excellent condition clean original "
          "owner quality deal gold tan trim");
    }
    ws_ = wordsim::WsMatrix::Build(corpus);

    EXPECT_TRUE(engine_.AddDomain(&table_, std::move(ti)).ok());
    engine_.SetWordSimilarity(&ws_);
    EXPECT_TRUE(engine_.TrainClassifier().ok());
  }

  db::Table table_;
  wordsim::WsMatrix ws_;
  CqadsEngine engine_;
};

TEST_F(EngineTest, AddDomainValidation) {
  CqadsEngine e;
  EXPECT_FALSE(e.AddDomain(nullptr, qlog::TiMatrix()).ok());
  db::Table unindexed(cqads::testing::MiniCarSchema());
  EXPECT_FALSE(e.AddDomain(&unindexed, qlog::TiMatrix()).ok());
}

TEST_F(EngineTest, DuplicateDomainRejected) {
  auto st = engine_.AddDomain(&table_, qlog::TiMatrix());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST_F(EngineTest, ClassifyRequiresTraining) {
  CqadsEngine fresh;
  EXPECT_FALSE(fresh.ClassifyDomain("honda").ok());
}

TEST_F(EngineTest, SingleDomainClassification) {
  auto domain = engine_.ClassifyDomain("blue honda accord");
  ASSERT_TRUE(domain.ok());
  EXPECT_EQ(domain.value(), "cars");
}

TEST_F(EngineTest, ParseProducesSqlAndInterpretation) {
  auto parsed = engine_.Parse("cars", "blue honda accord under $15,000");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().assembled.interpretation,
            "(make = 'honda' AND model = 'accord') AND color = 'blue' AND "
            "price < 15000");
  EXPECT_NE(parsed.value().sql.find("SELECT * FROM Car_Ads WHERE"),
            std::string::npos);
  EXPECT_NE(parsed.value().sql.find("LIMIT 30"), std::string::npos);
  EXPECT_EQ(parsed.value().assembled.units.size(), 3u);
}

TEST_F(EngineTest, ParseUnknownDomainFails) {
  EXPECT_EQ(engine_.Parse("boats", "x").status().code(),
            StatusCode::kNotFound);
}

TEST_F(EngineTest, ExactAnswersFirst) {
  auto result = engine_.AskInDomain("cars", "blue honda accord");
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  ASSERT_GE(r.answers.size(), 2u);
  EXPECT_EQ(r.exact_count, 2u);  // rows 0 and 1
  EXPECT_TRUE(r.answers[0].exact);
  EXPECT_TRUE(r.answers[1].exact);
  EXPECT_EQ(r.answers[0].row, 0u);
  EXPECT_EQ(r.answers[1].row, 1u);
}

TEST_F(EngineTest, PartialAnswersFollowExact) {
  auto result =
      engine_.AskInDomain("cars", "honda accord blue less than 15000 dollars");
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  EXPECT_EQ(r.exact_count, 1u);  // only row 0 is blue accord under 15000
  ASSERT_GT(r.answers.size(), r.exact_count);
  // Partials are sorted by descending Rank_Sim.
  for (std::size_t i = r.exact_count + 1; i < r.answers.size(); ++i) {
    EXPECT_GE(r.answers[i - 1].rank_sim, r.answers[i].rank_sim);
  }
  // Every partial reports the similarity measure used (Table 2 column).
  for (std::size_t i = r.exact_count; i < r.answers.size(); ++i) {
    EXPECT_FALSE(r.answers[i].measure.empty());
  }
}

TEST_F(EngineTest, PartialAnswersDisjointFromExact) {
  auto result =
      engine_.AskInDomain("cars", "honda accord blue less than 15000 dollars");
  ASSERT_TRUE(result.ok());
  std::set<db::RowId> seen;
  for (const auto& a : result.value().answers) {
    EXPECT_TRUE(seen.insert(a.row).second) << "duplicate row " << a.row;
  }
}

TEST_F(EngineTest, AnswerCapRespected) {
  CqadsEngine::Options opts;
  opts.answer_cap = 3;
  CqadsEngine capped(opts);
  qlog::TiMatrix ti;
  ASSERT_TRUE(capped.AddDomain(&table_, std::move(ti)).ok());
  auto result = capped.AskInDomain("cars", "honda");
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().answers.size(), 3u);
}

TEST_F(EngineTest, PartialDisabledOption) {
  CqadsEngine::Options opts;
  opts.enable_partial = false;
  CqadsEngine no_partial(opts);
  ASSERT_TRUE(no_partial.AddDomain(&table_, qlog::TiMatrix()).ok());
  auto result = no_partial.AskInDomain(
      "cars", "honda accord blue less than 15000 dollars");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().answers.size(), result.value().exact_count);
}

TEST_F(EngineTest, SuperlativeQuestion) {
  auto result = engine_.AskInDomain("cars", "cheapest honda");
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  ASSERT_FALSE(r.answers.empty());
  EXPECT_EQ(r.answers[0].row, 3u);  // civic at 5500
  EXPECT_NE(r.sql.find("ORDER BY Price ASC"), std::string::npos);
}

TEST_F(EngineTest, ContradictionShortCircuits) {
  auto result =
      engine_.AskInDomain("cars", "honda price below 2000 price above 9000");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().contradiction);
  EXPECT_TRUE(result.value().answers.empty());
}

TEST_F(EngineTest, SingleConditionPartialBySimilarity) {
  // One condition and no exact match (minimum price in the fixture is
  // 5500): similarity-only retrieval ranks records by Num_Sim.
  auto result = engine_.AskInDomain("cars", "less than 5000 dollars");
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  EXPECT_EQ(r.exact_count, 0u);
  ASSERT_FALSE(r.answers.empty());
  // The cheapest car (civic at 5500) is the closest partial match.
  EXPECT_EQ(r.answers[0].row, 3u);
  EXPECT_EQ(r.answers[0].measure, "Num_Sim on Price");
  for (std::size_t i = 1; i < r.answers.size(); ++i) {
    EXPECT_GE(r.answers[i - 1].rank_sim, r.answers[i].rank_sim);
  }
}

TEST_F(EngineTest, IncompleteQuestionUnionsAttributes) {
  auto result = engine_.AskInDomain("cars", "honda accord 2004");
  ASSERT_TRUE(result.ok());
  // Row 1 (accord year 2004) must be among the exact answers: 2004 is in
  // the year range so year=2004 is one of the unioned candidates.
  bool found = false;
  for (const auto& a : result.value().answers) {
    if (a.row == 1 && a.exact) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(EngineTest, AskRoutesThroughClassifier) {
  auto result = engine_.Ask("blue honda accord");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().domain, "cars");
}

TEST_F(EngineTest, RuntimeAccessors) {
  EXPECT_NE(engine_.runtime("cars"), nullptr);
  EXPECT_EQ(engine_.runtime("boats"), nullptr);
  EXPECT_EQ(engine_.Domains(), (std::vector<std::string>{"cars"}));
  EXPECT_EQ(engine_.runtime("cars")->attr_ranges.size(), 10u);
}

TEST_F(EngineTest, StatsAccumulate) {
  auto result =
      engine_.AskInDomain("cars", "honda accord blue less than 15000 dollars");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().stats.index_lookups, 0u);
}

}  // namespace
}  // namespace cqads::core
