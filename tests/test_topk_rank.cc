// The bounded top-k rank path (EngineOptions::use_topk_rank): TopK heap
// semantics (exact (score desc, row asc) order, tie-safe threshold, k = 0
// degenerate, schedule-independent merge), RankBounds block metadata,
// randomized engine-level byte-parity of pruned/parallel ranking against
// the frozen serial full-sort oracle across all eight datagen domains,
// score-tie boundaries at answer_cap, delta rows + tombstones across a
// compaction, deadline-degraded sweeps, rank counters through ExecStats and
// ConcurrentServer::StatsJson, and the TSan leg racing morsel-parallel rank
// against ingest/retire/compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/cqads_engine.h"
#include "core/pipeline.h"
#include "datagen/domain_spec.h"
#include "datagen/question_gen.h"
#include "datagen/world.h"
#include "db/exec/rank_bounds.h"
#include "db/exec/topk.h"
#include "serve/concurrent_server.h"
#include "serve/worker_pool.h"
#include "test_fixtures.h"

namespace cqads {
namespace {

using db::RowId;
using db::exec::TopK;
using db::exec::TopKEntry;

// ------------------------------------------------------------- TopK unit

TEST(TopKTest, KeepsExactlyTheFullSortPrefix) {
  // Random scores with deliberate duplicates: the heap's survivors must be
  // byte-for-byte the first k entries of the full (score desc, row asc)
  // sort.
  Rng rng(42);
  for (std::size_t k : {std::size_t{1}, std::size_t{7}, std::size_t{30}}) {
    std::vector<TopKEntry> all;
    TopK topk(k);
    for (RowId row = 0; row < 500; ++row) {
      const double score =
          static_cast<double>(rng.UniformInt(0, 24)) / 10.0;
      all.push_back(TopKEntry{score, row, 0});
      topk.Push(score, row, 0);
    }
    std::sort(all.begin(), all.end(), db::exec::TopKBetter);
    all.resize(std::min(k, all.size()));
    const std::vector<TopKEntry> got = topk.Take();
    ASSERT_EQ(got.size(), all.size()) << "k=" << k;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].score, all[i].score) << "k=" << k << " i=" << i;
      EXPECT_EQ(got[i].row, all[i].row) << "k=" << k << " i=" << i;
    }
  }
}

TEST(TopKTest, TieAtThresholdAdmitsSmallerRowOnly) {
  TopK topk(2);
  EXPECT_FALSE(topk.full());
  topk.Push(1.0, 10, 0);
  topk.Push(1.0, 20, 0);
  ASSERT_TRUE(topk.full());
  EXPECT_EQ(topk.threshold(), 1.0);
  // Equal score: admitted iff the row id is smaller than the current k-th's
  // — the reason block pruning must use bound < threshold STRICTLY.
  EXPECT_TRUE(topk.WouldAccept(1.0, 5));
  EXPECT_FALSE(topk.WouldAccept(1.0, 20));
  EXPECT_FALSE(topk.WouldAccept(1.0, 25));
  EXPECT_FALSE(topk.WouldAccept(0.999, 0));
  ASSERT_TRUE(topk.Push(1.0, 5, 0));
  const auto got = topk.Take();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].row, 5u);
  EXPECT_EQ(got[1].row, 10u);
}

TEST(TopKTest, ZeroCapacityAcceptsNothingAndPrunesEverything) {
  TopK topk(0);
  EXPECT_FALSE(topk.WouldAccept(100.0, 0));
  EXPECT_FALSE(topk.Push(100.0, 0, 0));
  EXPECT_EQ(topk.threshold(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(topk.Take().empty());
}

TEST(TopKTest, MergeIsScheduleIndependent) {
  // Split one candidate stream across W "workers" in many different ways;
  // the merged top-k must always equal the single-accumulator result.
  Rng rng(7);
  std::vector<TopKEntry> all;
  for (RowId row = 0; row < 300; ++row) {
    all.push_back(
        TopKEntry{static_cast<double>(rng.UniformInt(0, 11)) / 4.0, row, 0});
  }
  constexpr std::size_t kK = 10;
  TopK reference(kK);
  for (const auto& e : all) reference.Push(e.score, e.row, e.tag);
  const auto want = reference.Take();

  for (std::size_t workers : {std::size_t{2}, std::size_t{3}, std::size_t{8}}) {
    for (std::uint64_t salt = 0; salt < 5; ++salt) {
      Rng assign(1000 + salt);
      std::vector<TopK> locals(workers, TopK(kK));
      for (const auto& e : all) {
        locals[static_cast<std::size_t>(
                   assign.UniformInt(0, static_cast<std::int64_t>(workers) - 1))]
            .Push(e.score, e.row, e.tag);
      }
      TopK merged(kK);
      for (auto& l : locals) merged.Merge(std::move(l));
      const auto got = merged.Take();
      ASSERT_EQ(got.size(), want.size()) << workers << " " << salt;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].score, want[i].score) << workers << " " << salt;
        EXPECT_EQ(got[i].row, want[i].row) << workers << " " << salt;
      }
    }
  }
}

// ------------------------------------------------------- RankBounds unit

TEST(RankBoundsTest, MiniCarBlockMetadata) {
  db::Table table = testing::MiniCarTable();  // 13 rows => one block
  auto bounds = db::exec::RankBounds::Build(table);
  ASSERT_NE(bounds, nullptr);
  EXPECT_EQ(bounds->num_rows(), 13u);
  EXPECT_EQ(bounds->num_blocks(), 1u);
  EXPECT_EQ(bounds->block_end(0), 13u);

  // Attribute 0 ("make", text): one block whose code range covers every
  // row's code, with a representative row per dictionary code.
  const auto& make = bounds->attr(0);
  ASSERT_EQ(make.code_min.size(), 1u);
  ASSERT_LE(make.code_min[0], make.code_max[0]);
  const auto& codes = table.store().code_column(0);
  for (RowId r = 0; r < table.num_rows(); ++r) {
    ASSERT_GE(codes[r], make.code_min[0]);
    ASSERT_LE(codes[r], make.code_max[0]);
  }
  for (std::uint32_t c = 0; c < make.first_row_of_code.size(); ++c) {
    const RowId rep = make.first_row_of_code[c];
    if (rep == db::exec::kNoRankRow) continue;
    EXPECT_EQ(codes[rep], c);
  }

  // Attribute 2 ("year", numeric): the block's value envelope is the
  // column's true min/max.
  const auto& year = bounds->attr(2);
  ASSERT_EQ(year.val_min.size(), 1u);
  const auto& vals = table.store().numeric_column(2);
  double lo = vals[0], hi = vals[0];
  for (RowId r = 1; r < table.num_rows(); ++r) {
    lo = std::min(lo, vals[r]);
    hi = std::max(hi, vals[r]);
  }
  EXPECT_EQ(year.val_min[0], lo);
  EXPECT_EQ(year.val_max[0], hi);
}

// --------------------------------------- world-backed differential suite

class TopKRankParityTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 20111130;
    options.ads_per_domain = 120;
    options.sessions_per_domain = 200;
    options.corpus_docs_per_domain = 40;
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static datagen::World* world_;
};

datagen::World* TopKRankParityTest::world_ = nullptr;

/// Asks every question under `on` then under `off` and requires canonical
/// byte-identity pair by pair.
void ExpectAskParity(core::CqadsEngine& engine, const std::string& domain,
                     const std::vector<datagen::GeneratedQuestion>& questions,
                     const core::EngineOptions& on,
                     const core::EngineOptions& off, const char* label) {
  auto canon = [&](const std::string& text) {
    auto r = engine.AskInDomain(domain, text);
    return r.ok() ? core::CanonicalAskResultString(r.value())
                  : "ERROR: " + r.status().ToString();
  };
  std::vector<std::string> on_answers;
  engine.SetOptions(on);
  for (const auto& q : questions) on_answers.push_back(canon(q.text));
  engine.SetOptions(off);
  for (std::size_t i = 0; i < questions.size(); ++i) {
    EXPECT_EQ(on_answers[i], canon(questions[i].text))
        << label << " " << domain << " q" << i << ": " << questions[i].text;
  }
  engine.SetOptions(core::EngineOptions());
}

// The pruned top-k path answers byte-identically to the frozen serial
// full-sort oracle — vectorized and scalar.
TEST_P(TopKRankParityTest, AskByteIdenticalTopKOnAndOff) {
  const std::string& domain = GetParam();
  const auto* spec = world_->spec(domain);
  ASSERT_NE(spec, nullptr);
  Rng rng(555);
  auto questions = datagen::GenerateQuestions(
      *spec, *world_->table(domain), 60, datagen::QuestionGenOptions(), &rng);

  core::EngineOptions on;  // defaults: use_topk_rank = true
  core::EngineOptions off;
  off.use_topk_rank = false;
  ExpectAskParity(world_->mutable_engine(), domain, questions, on, off,
                  "vectorized");

  core::EngineOptions on_scalar = on;
  on_scalar.use_vector_kernels = false;
  core::EngineOptions off_scalar = off;
  off_scalar.use_vector_kernels = false;
  ExpectAskParity(world_->mutable_engine(), domain, questions, on_scalar,
                  off_scalar, "scalar");
}

// Partial ranking does real work on this stream, and the new ExecStats
// counters see it (blocks visited whenever the top-k sweep ran).
TEST_P(TopKRankParityTest, RankCountersAccumulate) {
  const std::string& domain = GetParam();
  const auto* spec = world_->spec(domain);
  ASSERT_NE(spec, nullptr);
  Rng rng(901);
  auto questions = datagen::GenerateQuestions(
      *spec, *world_->table(domain), 40, datagen::QuestionGenOptions(), &rng);

  auto& engine = world_->mutable_engine();
  engine.SetOptions(core::EngineOptions());
  std::size_t blocks_visited = 0;
  std::size_t ranked_questions = 0;
  for (const auto& q : questions) {
    auto r = engine.AskInDomain(domain, q.text);
    if (!r.ok()) continue;
    blocks_visited += r.value().stats.rank_blocks_visited;
    const auto& answers = r.value().answers;
    const bool has_partial =
        std::any_of(answers.begin(), answers.end(),
                    [](const core::Answer& a) { return !a.exact; });
    if (has_partial) {
      ++ranked_questions;
      EXPECT_LE(answers.size(),
                static_cast<std::size_t>(core::EngineOptions().answer_cap));
    }
  }
  if (ranked_questions > 0) EXPECT_GT(blocks_visited, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDomains, TopKRankParityTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> names;
      for (const auto& spec : datagen::AllDomainSpecs()) {
        names.push_back(spec.schema.domain());
      }
      return names;
    }()));

// ----------------------------------- tie boundaries + delta / tombstones

db::Record CarRecord(const char* make, const char* model, double year,
                     double price, double mileage, const char* color,
                     const char* transmission, const char* doors,
                     const char* drivetrain, const char* features) {
  db::Record r;
  r.push_back(db::Value::Text(make));
  r.push_back(db::Value::Text(model));
  r.push_back(db::Value::Real(year));
  r.push_back(db::Value::Real(price));
  r.push_back(db::Value::Real(mileage));
  r.push_back(db::Value::Text(color));
  r.push_back(db::Value::Text(transmission));
  r.push_back(db::Value::Text(doors));
  r.push_back(db::Value::Text(drivetrain));
  r.push_back(db::Value::Text(features));
  return r;
}

/// Engine over many duplicated MiniCar rows: scores tie in large groups, so
/// the answer_cap boundary lands inside a tie run — the adversarial case
/// for threshold pruning (an equal-score smaller-row candidate must still
/// displace the k-th entry).
class TieBoundaryTest : public ::testing::Test {
 protected:
  TieBoundaryTest() : table_(testing::MiniCarSchema()) {
    const db::Table proto = testing::MiniCarTable();
    for (int copy = 0; copy < 20; ++copy) {  // 260 rows, ties everywhere
      for (RowId r = 0; r < proto.num_rows(); ++r) {
        EXPECT_TRUE(table_.Insert(proto.row(r)).ok());
      }
    }
    table_.BuildIndexes();
    EXPECT_TRUE(engine_.AddDomain(&table_, qlog::TiMatrix()).ok());
    EXPECT_TRUE(engine_.TrainClassifier().ok());
  }

  std::string CanonicalAsk(const std::string& q) {
    auto r = engine_.AskInDomain("cars", q);
    return r.ok() ? core::CanonicalAskResultString(r.value())
                  : "ERROR: " + r.status().ToString();
  }

  void ExpectParity(const std::vector<std::string>& questions) {
    core::EngineOptions off;
    off.use_topk_rank = false;
    std::vector<std::string> want;
    engine_.SetOptions(off);
    for (const auto& q : questions) want.push_back(CanonicalAsk(q));
    engine_.SetOptions(core::EngineOptions());
    for (std::size_t i = 0; i < questions.size(); ++i) {
      EXPECT_EQ(CanonicalAsk(questions[i]), want[i]) << questions[i];
    }
  }

  db::Table table_;
  core::CqadsEngine engine_;
};

TEST_F(TieBoundaryTest, CapFallsInsideTieRuns) {
  // Single-condition questions sweep the whole table; multi-unit questions
  // relax N-1. With 20 copies of every row, either way the 30-answer cap
  // cuts through a run of identical scores where only row ids decide.
  ExpectParity({
      "blue car",
      "honda",
      "manual transmission",
      "blue honda with cd player",
      "cheap toyota under 9000 dollars",
      "red car with leather seats",
      "4 door automatic with gps",
  });
}

TEST_F(TieBoundaryTest, DeltaRowsAndTombstonesStayByteIdentical) {
  // Grow a delta (new best-scoring candidates above base_rows), tombstone
  // base rows mid-tie-run, and re-check parity before AND after compaction:
  // the pruned path must handle live deltas, retired masks, and the
  // post-compaction rebuilt table identically to the oracle.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine_
                    .IngestAd("cars", CarRecord("honda", "fit", 2011, 9500,
                                                40000, "blue", "automatic",
                                                "4 door", "2 wheel drive",
                                                "cd player;bluetooth"))
                    .ok());
  }
  ASSERT_TRUE(engine_.RetireAd("cars", 0).ok());
  ASSERT_TRUE(engine_.RetireAd("cars", 13).ok());
  ASSERT_TRUE(engine_.RetireAd("cars", 26).ok());
  const std::vector<std::string> questions = {
      "blue car", "honda", "blue honda with cd player", "manual red car"};
  ExpectParity(questions);

  ASSERT_TRUE(engine_.CompactDomain("cars").ok());
  ExpectParity(questions);
}

// ------------------------------------------- parallel sweeps (big domain)

class BigDomainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One domain, enough rows that the rank sweeps clear
    // kMinRowsForParallelExec and actually fan out on the runner.
    datagen::WorldOptions options;
    options.seed = 20111130;
    options.ads_per_domain = 9000;
    options.sessions_per_domain = 300;
    options.corpus_docs_per_domain = 40;
    options.domains = {"cars"};
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static datagen::World* world_;
};

datagen::World* BigDomainTest::world_ = nullptr;

TEST_F(BigDomainTest, MorselParallelRankMatchesSerialOracle) {
  const auto* spec = world_->spec("cars");
  ASSERT_NE(spec, nullptr);
  Rng rng(321);
  auto questions = datagen::GenerateQuestions(
      *spec, *world_->table("cars"), 25, datagen::QuestionGenOptions(), &rng);

  serve::WorkerPool pool(4);
  core::EngineOptions parallel_on;
  parallel_on.exec_runner = &pool;
  parallel_on.exec_parallelism = 4;
  core::EngineOptions serial_off;
  serial_off.use_topk_rank = false;
  ExpectAskParity(world_->mutable_engine(), "cars", questions, parallel_on,
                  serial_off, "parallel");
}

// The CI TSan leg: morsel-parallel pruned ranking racing ingest, retire,
// compaction, and snapshot swaps. Each request pins its snapshot, per-worker
// scorer slots keep SimScorer single-threaded, and the shared threshold is
// the only cross-worker rank state — nothing may race.
TEST_F(BigDomainTest, ParallelRankSurvivesConcurrentMutation) {
  auto& engine = world_->mutable_engine();
  serve::WorkerPool exec_pool(3);
  core::EngineOptions options;
  options.exec_runner = &exec_pool;
  options.exec_parallelism = 3;
  engine.SetOptions(options);

  const auto* spec = world_->spec("cars");
  Rng rng(654);
  auto questions = datagen::GenerateQuestions(
      *spec, *world_->table("cars"), 12, datagen::QuestionGenOptions(), &rng);

  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    const db::Record seed_record = world_->table("cars")->row(0);
    int iteration = 0;
    while (!stop_writer.load()) {
      auto id = engine.IngestAd("cars", seed_record);
      if (id.ok() && iteration % 2 == 0) {
        (void)engine.RetireAd("cars", id.value());
      }
      if (++iteration % 4 == 0) (void)engine.CompactDomain("cars");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  serve::ConcurrentServer::Options server_options;
  server_options.num_workers = 3;
  serve::ConcurrentServer server(&engine, server_options);
  std::atomic<int> done{0};
  std::atomic<int> errors{0};
  constexpr int kAsks = 60;
  for (int i = 0; i < kAsks; ++i) {
    server.AskAsyncInDomain("cars", questions[i % questions.size()].text,
                            Deadline::Infinite(),
                            [&](Result<core::AskResult> r) {
                              if (!r.ok()) errors.fetch_add(1);
                              done.fetch_add(1);
                            });
  }
  const auto timeout =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (done.load() < kAsks &&
         std::chrono::steady_clock::now() < timeout) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop_writer.store(true);
  writer.join();
  ASSERT_EQ(done.load(), kAsks);
  EXPECT_EQ(errors.load(), 0);
  engine.SetOptions(core::EngineOptions());
}

// -------------------------------------- degraded sweeps + server counters

TEST_F(BigDomainTest, DeadlinedSweepsDegradeOrExpireNeverError) {
  auto& engine = world_->mutable_engine();
  engine.SetOptions(core::EngineOptions());
  const auto* spec = world_->spec("cars");
  Rng rng(987);
  auto questions = datagen::GenerateQuestions(
      *spec, *world_->table("cars"), 20, datagen::QuestionGenOptions(), &rng);

  serve::ConcurrentServer server(&engine);
  std::size_t issued = 0;
  for (const auto budget :
       {std::chrono::microseconds(0), std::chrono::microseconds(80),
        std::chrono::microseconds(400), std::chrono::microseconds(5000)}) {
    for (const auto& q : questions) {
      auto r = server.AskInDomain("cars", q.text, Deadline::After(budget));
      ++issued;
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded) << q.text;
      } else if (!r.value().degraded) {
        // Fully answered despite the budget: the answer must obey the cap.
        EXPECT_LE(r.value().answers.size(),
                  static_cast<std::size_t>(core::EngineOptions().answer_cap));
      }
    }
  }
  const auto s = server.stats();
  EXPECT_EQ(s.answered + s.degraded + s.deadline_exceeded + s.errors, issued);
  EXPECT_EQ(s.errors, 0u);

  // Rank work surfaced through StatsJson (the fleet-scrape satellite):
  // the keys exist and the visited counter reflects the ranking above.
  const std::string json = server.StatsJson();
  EXPECT_NE(json.find("\"rank_blocks_visited\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rank_blocks_skipped\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rank_rows_pruned\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rank_threshold_updates\""), std::string::npos)
      << json;
  EXPECT_EQ(s.rank_blocks_visited > 0,
            json.find("\"rank_blocks_visited\":0") == std::string::npos);
}

}  // namespace
}  // namespace cqads
