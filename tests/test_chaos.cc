// ConcurrentServer error paths and the chaos suite. Every request must end
// in exactly ONE of the four serving outcomes — answered, degraded,
// deadline-exceeded, shed — even while failpoints inject latency into the
// pipeline/worker pool and a writer races ingest/retire/compaction/snapshot
// swaps against serving. This file is a TSan target in CI: the injected
// delays widen interleaving windows that are otherwise nanoseconds wide.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/failpoint.h"
#include "core/ask_types.h"
#include "eval/experiments.h"
#include "qlog/ti_matrix.h"
#include "serve/concurrent_server.h"

namespace cqads::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::WorldOptions options;
    options.seed = 90210;
    options.ads_per_domain = 100;
    options.sessions_per_domain = 250;
    options.corpus_docs_per_domain = 30;
    options.domains = {"cars", "jewellery"};
    auto built = datagen::World::Build(options);
    ASSERT_TRUE(built.ok()) << built.status();
    world_ = built.value().release();

    // Keep only questions the engine answers undeadlined: the chaos tests
    // assert errors == 0, which must mean "chaos introduced no NEW failure
    // mode", not "the stream happened to be clean".
    auto generated = eval::GenerateSurveyQuestions(*world_, 20, 20, 777);
    for (const auto& [domain, qs] : generated) {
      for (const auto& q : qs) {
        if (world_->engine().Ask(q.text).ok()) questions_->push_back(q.text);
      }
    }
    ASSERT_GE(questions_->size(), 40u);
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
    questions_->clear();
  }

  // Failpoints are process-global; every test starts and ends clean.
  void SetUp() override { FailPoints::DisarmAll(); }
  void TearDown() override { FailPoints::DisarmAll(); }

  // A private engine (the world's is shared across tests and must stay
  // pristine) that chaos tests are free to mutate.
  static void BuildPrivateEngine(core::CqadsEngine* engine) {
    for (const auto& domain : world_->domains()) {
      qlog::TiMatrix ti = qlog::TiMatrix::Build(*world_->query_log(domain));
      ASSERT_TRUE(engine->AddDomain(world_->table(domain), std::move(ti)).ok());
    }
    engine->SetWordSimilarity(&world_->ws_matrix());
    ASSERT_TRUE(engine->TrainClassifier().ok());
  }

  static datagen::World* world_;
  static std::vector<std::string>* questions_;
};

datagen::World* ChaosTest::world_ = nullptr;
std::vector<std::string>* ChaosTest::questions_ =
    new std::vector<std::string>;

// ------------------------------------------------------------ error paths

TEST_F(ChaosTest, UnknownDomainIsNotFound) {
  ConcurrentServer server(&world_->engine());
  auto r = server.AskInDomain("boats", "red sailboat");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST_F(ChaosTest, EmptyQuestionIsInvalidArgument) {
  ConcurrentServer server(&world_->engine());
  auto r = server.Ask("");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Also through the batch path.
  auto batch = server.AskBatch({""});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ChaosTest, EmptyBatchIsEmpty) {
  ConcurrentServer server(&world_->engine());
  EXPECT_TRUE(server.AskBatch({}).empty());
  auto s = server.stats();
  EXPECT_EQ(s.answered + s.degraded + s.deadline_exceeded + s.shed + s.errors,
            0u);
}

TEST_F(ChaosTest, ExpiredSynchronousAskIsDeadlineExceeded) {
  ConcurrentServer server(&world_->engine());
  auto r = server.Ask((*questions_)[0], Deadline::After(microseconds(0)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.stats().deadline_exceeded, 1u);
  // An infinite deadline still answers on the same server.
  EXPECT_TRUE(server.Ask((*questions_)[0]).ok());
}

TEST_F(ChaosTest, DefaultBudgetOptionAppliesToUndeadlinedRequests) {
  ConcurrentServer::Options options;
  options.default_budget = microseconds(1);  // effectively already expired
  ConcurrentServer server(&world_->engine(), options);
  auto r = server.Ask((*questions_)[0]);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // An explicit finite deadline overrides the default budget (an infinite
  // one does not — it is indistinguishable from "no deadline given", and
  // the default budget exists precisely to cover that case).
  EXPECT_TRUE(
      server.Ask((*questions_)[0], Deadline::After(std::chrono::hours(1)))
          .ok());
}

TEST_F(ChaosTest, BatchMidFlightExpiryLeavesSurvivorsByteIdentical) {
  const core::CqadsEngine& engine = world_->engine();

  // Every 3rd request enters the queue already expired; the rest carry no
  // deadline. Expired entries must come back kDeadlineExceeded WITHOUT
  // executing, and the survivors must stay byte-identical to sequential
  // Ask — one doomed request must never perturb its batch neighbors.
  std::vector<Deadline> deadlines(questions_->size());
  std::size_t expired_count = 0;
  for (std::size_t i = 0; i < deadlines.size(); ++i) {
    if (i % 3 == 0) {
      deadlines[i] = Deadline::After(microseconds(0));
      ++expired_count;
    }
  }

  ConcurrentServer::Options options;
  options.num_workers = 4;
  ConcurrentServer server(&engine, options);
  auto results = server.AskBatch(*questions_, deadlines);
  ASSERT_EQ(results.size(), questions_->size());

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i % 3 == 0) {
      ASSERT_FALSE(results[i].ok()) << "expired request " << i << " executed";
      EXPECT_EQ(results[i].status().code(), StatusCode::kDeadlineExceeded);
      continue;
    }
    auto expected = engine.Ask((*questions_)[i]);
    ASSERT_EQ(results[i].ok(), expected.ok()) << (*questions_)[i];
    if (!expected.ok()) continue;
    EXPECT_FALSE(results[i].value().degraded);
    EXPECT_EQ(core::CanonicalAskResultString(results[i].value()),
              core::CanonicalAskResultString(expected.value()))
        << (*questions_)[i];
  }

  auto s = server.stats();
  EXPECT_EQ(s.deadline_exceeded, expired_count);
  EXPECT_EQ(s.expired_in_queue, expired_count);  // dropped at dequeue
  EXPECT_GT(s.dequeued, 0u);
}

TEST_F(ChaosTest, SaturatedQueueShedsWithOverloaded) {
  // Park the pool: every worker that claims a task sleeps 100 ms in the
  // worker_pool.task failpoint, so the first admitted request holds the
  // single queue slot while the rest arrive — deterministic shedding
  // without tight timing assumptions (the submit loop runs in microseconds).
  FailPoints::Config slow;
  slow.delay = milliseconds(100);
  FailPoints::Arm("worker_pool.task", slow);

  ConcurrentServer::Options options;
  options.num_workers = 2;
  options.max_queue = 1;
  ConcurrentServer server(&world_->engine(), options);

  constexpr int kRequests = 8;
  std::atomic<int> done{0};
  std::atomic<int> ok{0}, shed{0}, other{0};
  for (int i = 0; i < kRequests; ++i) {
    server.AskAsync((*questions_)[i % questions_->size()],
                    Deadline::Infinite(),
                    [&](Result<core::AskResult> r) {
                      if (r.ok()) {
                        ok.fetch_add(1);
                      } else if (r.status().code() == StatusCode::kOverloaded) {
                        shed.fetch_add(1);
                      } else {
                        other.fetch_add(1);
                      }
                      done.fetch_add(1);
                    });
  }
  const auto timeout =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done.load() < kRequests &&
         std::chrono::steady_clock::now() < timeout) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(done.load(), kRequests) << "async callbacks went missing";

  EXPECT_EQ(ok.load(), 1);  // the one admitted request
  EXPECT_EQ(shed.load(), kRequests - 1);
  EXPECT_EQ(other.load(), 0);
  auto s = server.stats();
  EXPECT_EQ(s.shed, static_cast<std::uint64_t>(kRequests - 1));
  EXPECT_EQ(s.answered + s.degraded, 1u);
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST_F(ChaosTest, EveryBudgetEndsInExactlyOneOutcome) {
  // Sweep budgets from already-expired to infinite: whatever each request's
  // fate, the outcome counters must partition the request count exactly —
  // no request vanishes, none is double-counted, none errors.
  ConcurrentServer server(&world_->engine());
  const std::vector<microseconds> budgets = {
      microseconds(0), microseconds(50), microseconds(200),
      microseconds(1000), microseconds::max()};
  std::size_t issued = 0;
  for (const auto& budget : budgets) {
    for (const auto& q : *questions_) {
      const Deadline d = budget == microseconds::max()
                             ? Deadline::Infinite()
                             : Deadline::After(budget);
      auto r = server.Ask(q, d);
      ++issued;
      if (r.ok()) {
        EXPECT_FALSE(r.value().domain.empty());
      } else {
        // The stream is pre-filtered to baseline-answerable questions, so
        // the only legitimate failure is the deadline.
        EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded) << q;
      }
    }
  }
  auto s = server.stats();
  EXPECT_EQ(s.answered + s.degraded + s.deadline_exceeded + s.shed + s.errors,
            issued);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.shed, 0u);  // synchronous Ask never queues, never sheds
  // The infinite-budget pass answers everything, so both extremes occurred.
  EXPECT_GE(s.answered, questions_->size());
  EXPECT_GE(s.deadline_exceeded, questions_->size());
}

// ------------------------------------------------------------ chaos suite

TEST_F(ChaosTest, ServingSurvivesFaultInjectionAndConcurrentMutation) {
  // The full storm, and the CI TSan target: failpoints slow the execute
  // stage, the rank stage, the worker pool, and snapshot swaps while one
  // writer hammers ingest/retire/compact (with injected ingest failures)
  // and two submitters fire async requests with mixed budgets. Assertions:
  // every request's callback fires, every outcome is exactly one of
  // answered/degraded/deadline-exceeded/shed, the server's own counters
  // agree, and nothing races under TSan.
  core::CqadsEngine engine;
  BuildPrivateEngine(&engine);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  FailPoints::ArmFromSpec(
      "pipeline.execute=delay_us:200,every:7;"
      "pipeline.rank=delay_us:100,every:5;"
      "worker_pool.task=delay_us:50,every:3;"
      "engine.snapshot_swap=delay_us:300,every:2;"
      "engine.ingest=error:INTERNAL,every:4;"
      "engine.compact=delay_us:500,every:2");

  ConcurrentServer::Options options;
  options.num_workers = 4;
  options.max_queue = 64;
  ConcurrentServer server(&engine, options);

  constexpr int kPerSubmitter = 300;
  constexpr int kSubmitters = 2;
  constexpr int kTotal = kPerSubmitter * kSubmitters;
  std::atomic<int> done{0};
  std::atomic<int> answered{0}, degraded{0}, deadline{0}, shed{0}, errors{0};

  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    const db::Record seed_record = world_->table("cars")->row(0);
    int iteration = 0;
    while (!stop_writer.load()) {
      auto id = engine.IngestAd("cars", seed_record);
      if (id.ok()) {
        // Retire what we added so the dataset drifts back; tolerate the
        // injected ingest failures (every 4th) silently.
        (void)engine.RetireAd("cars", id.value());
      } else {
        EXPECT_EQ(id.status().code(), StatusCode::kInternal)
            << id.status().ToString();
      }
      if (++iteration % 5 == 0) (void)engine.CompactDomain("cars");
      if (iteration % 7 == 0) (void)engine.TrainClassifier();
      std::this_thread::sleep_for(microseconds(200));
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        // Mixed budgets: a third undeadlined, a third generous, a third
        // tight enough that some expire mid-flight.
        Deadline d;
        switch ((t + i) % 3) {
          case 0: d = Deadline::Infinite(); break;
          case 1: d = Deadline::After(milliseconds(50)); break;
          default: d = Deadline::After(microseconds(300)); break;
        }
        server.AskAsync((*questions_)[i % questions_->size()], d,
                        [&](Result<core::AskResult> r) {
                          if (r.ok()) {
                            (r.value().degraded ? degraded : answered)
                                .fetch_add(1);
                          } else {
                            switch (r.status().code()) {
                              case StatusCode::kDeadlineExceeded:
                                deadline.fetch_add(1);
                                break;
                              case StatusCode::kOverloaded:
                                shed.fetch_add(1);
                                break;
                              default:
                                errors.fetch_add(1);
                                break;
                            }
                          }
                          done.fetch_add(1);
                        });
      }
    });
  }
  for (auto& t : submitters) t.join();

  const auto timeout =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (done.load() < kTotal && std::chrono::steady_clock::now() < timeout) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  stop_writer.store(true);
  writer.join();
  FailPoints::DisarmAll();
  ASSERT_EQ(done.load(), kTotal) << "async callbacks went missing";

  // Exhaustive classification: the four outcomes partition the request set.
  EXPECT_EQ(answered.load() + degraded.load() + deadline.load() + shed.load(),
            kTotal);
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(answered.load(), 0);

  // The server's own books agree with what the callbacks observed.
  auto s = server.stats();
  EXPECT_EQ(s.answered, static_cast<std::uint64_t>(answered.load()));
  EXPECT_EQ(s.degraded, static_cast<std::uint64_t>(degraded.load()));
  EXPECT_EQ(s.deadline_exceeded, static_cast<std::uint64_t>(deadline.load()));
  EXPECT_EQ(s.shed, static_cast<std::uint64_t>(shed.load()));
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(server.queue_depth(), 0u);

  // The failpoints actually fired: the chaos was real, not vacuous.
  // (Hits reset on re-arm/disarm, so read them before TearDown — already
  // disarmed above, so assert via the engine instead: the writer made
  // progress through injected failures.)
  ASSERT_TRUE(server.Ask((*questions_)[0]).ok());
}

}  // namespace
}  // namespace cqads::serve
