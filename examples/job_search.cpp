// Job-search scenario: the CS-jobs domain (§5.1) — salary bounds with and
// without units, experience requirements, levels, locations, superlatives,
// and the partial-match behaviour the paper observed to be hardest for
// appraisers in this domain.
#include <cstdio>

#include "datagen/world.h"

using cqads::datagen::World;
using cqads::datagen::WorldOptions;

int main() {
  WorldOptions options;
  options.ads_per_domain = 500;
  auto world_result = World::Build(options);
  if (!world_result.ok()) return 1;
  const auto& world = *world_result.value();
  const auto* table = world.table("cs_jobs");

  std::printf("=== CQAds CS-jobs walkthrough ===\n");
  const char* questions[] = {
      "senior python data scientist in seattle",
      "software engineer at google above 120000 dollars",
      "remote c++ job with salary between 90000 and 140000 dollars",
      "junior web developer less than 2 years experience",
      "highest paying database administrator",
      "data engineer or data analyst in boston",
      "security analyst not at startup",
  };

  for (const char* q : questions) {
    std::printf("\nQ: %s\n", q);
    // Let the classifier route the question (it should pick cs_jobs).
    auto classified = world.engine().ClassifyDomain(q);
    std::printf("   classified domain: %s\n",
                classified.ok() ? classified.value().c_str() : "?");
    auto result = world.engine().AskInDomain("cs_jobs", q);
    if (!result.ok()) {
      std::printf("   error: %s\n", result.status().ToString().c_str());
      continue;
    }
    const auto& r = result.value();
    std::printf("   interpretation: %s\n", r.interpretation.c_str());
    std::printf("   answers: %zu exact, %zu partial\n", r.exact_count,
                r.answers.size() - r.exact_count);
    std::size_t shown = 0;
    for (const auto& a : r.answers) {
      if (shown++ >= 3) break;
      std::printf("     %s %s | %s | %s | %s | $%s%s\n",
                  a.exact ? "[exact]  " : "[partial]",
                  table->cell(a.row, 0).AsText().c_str(),   // title
                  table->cell(a.row, 1).AsText().c_str(),   // company
                  table->cell(a.row, 3).AsText().c_str(),   // level
                  table->cell(a.row, 4).AsText().c_str(),   // location
                  table->cell(a.row, 5).AsText().c_str(),   // salary
                  a.exact ? "" : (" | " + a.measure).c_str());
    }
  }
  return 0;
}
