// Quickstart: build the eight-domain ads world, ask CQAds a handful of
// natural-language questions, and print the SQL, interpretation, and
// answers. This is the 60-second tour of the public API.
#include <cstdio>

#include "datagen/world.h"

using cqads::core::CqadsEngine;
using cqads::datagen::World;
using cqads::datagen::WorldOptions;

namespace {

void PrintAnswers(const World& world, const CqadsEngine::AskResult& result) {
  std::printf("  domain:         %s\n", result.domain.c_str());
  std::printf("  interpretation: %s\n", result.interpretation.c_str());
  std::printf("  sql:            %s\n", result.sql.c_str());
  if (result.contradiction) {
    std::printf("  search retrieved no results (contradictory criteria)\n");
    return;
  }
  std::printf("  answers: %zu (%zu exact)\n", result.answers.size(),
              result.exact_count);
  const auto* table = world.table(result.domain);
  const auto& schema = table->schema();
  std::size_t shown = 0;
  for (const auto& answer : result.answers) {
    if (shown++ >= 5) break;
    std::string line = answer.exact ? "    [exact]   " : "    [partial] ";
    for (std::size_t a = 0; a < schema.num_attributes() && a < 6; ++a) {
      line += schema.attribute(a).name + "=" +
              table->cell(answer.row, a).AsText() + " ";
    }
    if (!answer.exact) {
      line += "| rank_sim=" + std::to_string(answer.rank_sim) + " (" +
              answer.measure + ")";
    }
    std::printf("%s\n", line.c_str());
  }
}

}  // namespace

int main() {
  WorldOptions options;
  options.ads_per_domain = 400;
  auto world_result = World::Build(options);
  if (!world_result.ok()) {
    std::printf("world build failed: %s\n",
                world_result.status().ToString().c_str());
    return 1;
  }
  const auto& world = *world_result.value();

  const char* questions[] = {
      "Do you have a 2 door red bmw?",
      "Cheapest 2dr mazda with automatic transmission",
      "I want a 4 wheel drive with less than 20k miles",
      "Find honda accord blue less than 15,000 dollars",
      "hondaaccord less than $9000",
      "senior python data scientist in seattle above 120000 dollars",
      "gold diamond ring under $3000",
      "Any car priced below $7000 and not less than $2000",
  };

  for (const char* q : questions) {
    std::printf("\nQ: %s\n", q);
    auto result = world.engine().Ask(q);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintAnswers(world, result.value());
  }
  return 0;
}
