// cqads_serverd: the serving daemon — boots an engine from a persistent
// snapshot (near O(1): mmap + adopt) and serves it over TCP and/or a
// Unix-domain socket with the length-prefixed JSON protocol. This is the
// deployment shape the snapshot + network layers exist for: build and
// train once, save, then start N serving processes that share the
// snapshot's page-cache pages and answer within per-request budgets.
//
//   cqads_serverd --snapshot engine.snap --unix /tmp/cqads.sock
//   cqads_serverd --snapshot engine.snap --tcp 7421 --workers 8
//                 --budget-ms 25 --max-queue 64
//   cqads_serverd --demo --tcp 0        (no snapshot: builds a small
//                                        in-memory world and serves it —
//                                        a self-contained smoke target)
//
// SIGINT/SIGTERM stop the daemon cleanly: listeners close, in-flight
// requests drain, and the final stats dump (the same JSON "statsz" serves)
// goes to stdout.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "core/cqads_engine.h"
#include "datagen/world.h"
#include "serve/net/net_server.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: cqads_serverd (--snapshot <path> | --demo) [options]\n"
      "  --snapshot <path>   boot the engine from a saved snapshot\n"
      "  --demo              build a small demo world instead (no file)\n"
      "  --unix <path>       listen on a Unix-domain socket\n"
      "  --tcp <port>        listen on 127.0.0.1:<port> (0 = ephemeral)\n"
      "  --workers <n>       serving worker threads (default 4)\n"
      "  --budget-ms <ms>    default per-request budget when the request\n"
      "                      carries none (default: none)\n"
      "  --max-queue <n>     admission bound; excess load is shed with\n"
      "                      status \"overloaded\" (default: unbounded)\n");
  return 2;
}

// Signal handling: the handler only writes one byte to a self-pipe; the
// main thread blocks in poll() on the read end and runs the actual
// shutdown outside signal context.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  // Best effort; a full pipe already means a wake-up is pending.
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqads;

  std::string snapshot_path;
  bool demo = false;
  serve::net::NetServer::Options options;
  options.tcp_port = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return Usage();
      snapshot_path = v;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--unix") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.unix_path = v;
    } else if (arg == "--tcp") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.tcp_port = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.serve.num_workers = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--budget-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.serve.default_budget = std::chrono::microseconds(
          static_cast<std::int64_t>(std::atof(v) * 1000.0));
    } else if (arg == "--max-queue") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.serve.max_queue = static_cast<std::size_t>(std::atoi(v));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (snapshot_path.empty() == !demo) return Usage();  // exactly one source
  if (options.unix_path.empty() && options.tcp_port < 0) {
    std::fprintf(stderr, "no listener: pass --unix and/or --tcp\n");
    return Usage();
  }

  // Engine source: a snapshot file (the production path) or a freshly
  // built demo world (self-contained smoke testing).
  std::unique_ptr<core::CqadsEngine> snapshot_engine;
  std::unique_ptr<datagen::World> demo_world;
  const core::CqadsEngine* engine = nullptr;
  if (!snapshot_path.empty()) {
    auto opened = core::CqadsEngine::OpenSnapshot(snapshot_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "snapshot open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    snapshot_engine = std::move(opened).value();
    engine = snapshot_engine.get();
    std::printf("engine booted from %s\n", snapshot_path.c_str());
  } else {
    datagen::WorldOptions world_options;
    world_options.seed = 20111130;
    world_options.ads_per_domain = 120;
    world_options.sessions_per_domain = 360;
    world_options.corpus_docs_per_domain = 40;
    auto world = datagen::World::Build(world_options);
    if (!world.ok()) {
      std::fprintf(stderr, "demo world build failed: %s\n",
                   world.status().ToString().c_str());
      return 1;
    }
    demo_world = std::move(world).value();
    engine = &demo_world->engine();
    std::printf("demo world built (%zu ads/domain)\n",
                world_options.ads_per_domain);
  }

  auto server = serve::net::NetServer::Start(engine, options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  if (!options.unix_path.empty()) {
    std::printf("listening on unix:%s\n", options.unix_path.c_str());
  }
  if (options.tcp_port >= 0) {
    std::printf("listening on tcp:%s:%u\n", options.tcp_host.c_str(),
                server.value()->tcp_port());
  }
  std::fflush(stdout);

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe failed: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  struct pollfd wait_fd {};
  wait_fd.fd = g_signal_pipe[0];
  wait_fd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&wait_fd, 1, -1);
    if (rc > 0) break;
    // poll itself may be interrupted by the very signal we are waiting
    // for; retry — the self-pipe byte is what actually terminates us.
    if (rc < 0 && errno != EINTR) break;
  }

  std::printf("\nshutting down...\n");
  server.value()->Stop();
  std::printf("%s\n", server.value()->StatsJson().c_str());
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  return 0;
}
