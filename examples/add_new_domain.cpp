// Adding a new ads domain (§4.6): the paper claims a new domain needs only
// a relational schema and attribute-value pools — the identifiers table,
// tagging, Boolean rules, SQL generation, and ranking come for free. This
// example builds a ninth domain (boat ads) from scratch, wires it into an
// engine alongside the built-in domains, and asks questions against it.
#include <cstdio>

#include "common/rng.h"
#include "core/cqads_engine.h"
#include "datagen/ads_generator.h"
#include "datagen/question_gen.h"
#include "qlog/log_generator.h"
#include "qlog/ti_matrix.h"

using namespace cqads;

namespace {

// 1. The schema: Type I identity, Type II descriptions, Type III quantities.
datagen::DomainSpec MakeBoatSpec() {
  db::Attribute type;
  type.name = "type";
  type.attr_type = db::AttrType::kTypeI;
  db::Attribute brand;
  brand.name = "brand";
  brand.attr_type = db::AttrType::kTypeII;
  brand.aliases = {"brand", "maker"};
  db::Attribute hull;
  hull.name = "hull";
  hull.attr_type = db::AttrType::kTypeII;
  hull.aliases = {"hull"};
  db::Attribute length;
  length.name = "length";
  length.attr_type = db::AttrType::kTypeIII;
  length.data_kind = db::DataKind::kNumeric;
  length.unit_keywords = {"feet", "ft"};
  length.aliases = {"length"};
  db::Attribute price;
  price.name = "price";
  price.attr_type = db::AttrType::kTypeIII;
  price.data_kind = db::DataKind::kNumeric;
  price.unit_keywords = {"dollars", "usd"};
  price.aliases = {"price", "cost"};

  datagen::DomainSpec spec;
  spec.schema = db::Schema("boats", {type, brand, hull, length, price});
  spec.type_i_attrs = {0};
  // Latent segments: 0 sail, 1 motor, 2 paddle.
  spec.identities = {
      {{"sailboat"}, 0, 1.0}, {{"catamaran"}, 0, 0.6}, {{"sloop"}, 0, 0.4},
      {{"speedboat"}, 1, 1.0}, {{"pontoon"}, 1, 0.8},  {{"yacht"}, 1, 0.4},
      {{"canoe"}, 2, 0.7},     {{"kayak"}, 2, 0.9},
  };
  spec.pool_groups[1] = {{"bayliner", "sea ray"},
                         {"catalina", "beneteau"},
                         {"old town", "hobie"}};
  spec.pool_groups[2] = {{"fiberglass"}, {"aluminum"}, {"wood"}};
  spec.numerics[3] = {8, 60, true, 24, 10, true};
  spec.numerics[4] = {300, 250000, true, 18000, 9000, true};
  spec.cluster_value_mult = {{0, 1.6}, {1, 1.2}, {2, 0.05}};
  spec.domain_keywords = {"boat", "boats", "watercraft", "marine"};
  return spec;
}

}  // namespace

int main() {
  Rng rng(7);
  datagen::DomainSpec boats = MakeBoatSpec();

  // 2. Ads (the paper crawls ~500 per domain; we generate them).
  auto table_result = datagen::GenerateAds(boats, 500, &rng);
  if (!table_result.ok()) {
    std::printf("ads generation failed: %s\n",
                table_result.status().ToString().c_str());
    return 1;
  }
  db::Table table = std::move(table_result).value();

  // 3. Query log -> TI-matrix (identity relatedness for partial matching).
  qlog::LogGenSpec log_spec;
  for (const auto& id : boats.identities) {
    log_spec.values.push_back(id.values[0]);
    log_spec.cluster_of.push_back(id.cluster);
  }
  log_spec.num_sessions = 1000;
  qlog::TiMatrix ti =
      qlog::TiMatrix::Build(qlog::GenerateQueryLog(log_spec, &rng));

  // 4. Register the domain: the trie lexicon, tagger, executor, and Eq. 4
  //    ranges are derived automatically from the schema and the ads.
  core::CqadsEngine engine;
  if (auto st = engine.AddDomain(&table, std::move(ti)); !st.ok()) {
    std::printf("AddDomain failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (auto st = engine.TrainClassifier(); !st.ok()) {
    std::printf("TrainClassifier failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("=== CQAds with a brand-new domain: boat ads ===\n");
  std::printf("lexicon keywords: %zu trie nodes over %zu entries\n",
              engine.runtime("boats")->lexicon->trie().node_count(),
              engine.runtime("boats")->lexicon->trie().size());

  const char* questions[] = {
      "fiberglass speedboat under $25,000",
      "cheapest catalina sailboat",
      "kayak or canoe less than 800 dollars",
      "aluminum boat between 16 and 24 feet",
      "sailbot under 30000",  // misspelling: corrected by the trie
  };
  for (const char* q : questions) {
    std::printf("\nQ: %s\n", q);
    auto result = engine.AskInDomain("boats", q);
    if (!result.ok()) {
      std::printf("   error: %s\n", result.status().ToString().c_str());
      continue;
    }
    const auto& r = result.value();
    std::printf("   interpretation: %s\n", r.interpretation.c_str());
    std::printf("   answers: %zu exact, %zu partial\n", r.exact_count,
                r.answers.size() - r.exact_count);
    std::size_t shown = 0;
    for (const auto& a : r.answers) {
      if (shown++ >= 3) break;
      std::printf("     %s %s | %s | %s ft | $%s\n",
                  a.exact ? "[exact]  " : "[partial]",
                  table.cell(a.row, 0).AsText().c_str(),
                  table.cell(a.row, 2).AsText().c_str(),
                  table.cell(a.row, 3).AsText().c_str(),
                  table.cell(a.row, 4).AsText().c_str());
    }
  }
  return 0;
}
