// snapshot_tool: build/save/inspect persistent engine snapshots — the
// worked example for the ARCHITECTURE.md "Persistent snapshots" section.
//
//   snapshot_tool save <path> [ads_per_domain]
//       Builds the deterministic evaluation world, trains the classifier,
//       and serializes the complete engine into one relocatable file.
//
//   snapshot_tool inspect <path>
//       Validates and dumps the container: header fields, then every
//       section's name, offset, payload size, padded size, and checksum.
//
//   snapshot_tool ask <path> <domain> <question...>
//       Boots an engine from the snapshot (near O(1): mmap + adopt) and
//       answers one question — the cold-start path in miniature.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/ask_types.h"
#include "core/cqads_engine.h"
#include "datagen/world.h"
#include "snapshot/snapshot_file.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: snapshot_tool save <path> [ads_per_domain]\n"
               "       snapshot_tool inspect <path>\n"
               "       snapshot_tool ask <path> <domain> <question...>\n");
  return 2;
}

int Save(const std::string& path, std::size_t ads_per_domain) {
  cqads::datagen::WorldOptions options;
  options.seed = 20111130;
  options.ads_per_domain = ads_per_domain;
  options.sessions_per_domain = 3 * ads_per_domain;
  options.corpus_docs_per_domain = ads_per_domain / 4 + 10;
  std::printf("building world (%zu ads/domain)...\n", ads_per_domain);
  auto world = cqads::datagen::World::Build(options);
  if (!world.ok()) {
    std::fprintf(stderr, "world build failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  cqads::Status st = world.value()->engine().SaveSnapshot(path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved %s\n", path.c_str());
  return 0;
}

int Inspect(const std::string& path) {
  auto file = cqads::snapshot::SnapshotFile::Open(path);
  if (!file.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 file.status().ToString().c_str());
    return 1;
  }
  const auto& h = file.value().header();
  std::printf("snapshot %s\n", path.c_str());
  std::printf("  magic           0x%016" PRIx64 " (\"CQADSNAP\")\n", h.magic);
  std::printf("  endian_mark     0x%08x\n", h.endian_mark);
  std::printf("  format_version  %u\n", h.format_version);
  std::printf("  file_size       %" PRIu64 " bytes\n", h.file_size);
  std::printf("  sections        %" PRIu64 "\n", h.section_count);
  std::printf("  toc_checksum    0x%016" PRIx64 "\n", h.toc_checksum);
  std::printf("  header_checksum 0x%016" PRIx64 "\n\n", h.header_checksum);
  std::printf("  %-12s %10s %12s %12s  %s\n", "section", "offset", "bytes",
              "padded", "checksum");
  std::uint64_t total = 0;
  for (const auto& s : file.value().sections()) {
    const std::uint64_t padded =
        (s.length + cqads::snapshot::kArrayAlign - 1) /
        cqads::snapshot::kArrayAlign * cqads::snapshot::kArrayAlign;
    std::printf("  %-12s %10" PRIu64 " %12" PRIu64 " %12" PRIu64
                "  0x%016" PRIx64 "\n",
                s.name.c_str(), s.offset, s.length, padded, s.checksum);
    total += s.length;
  }
  std::printf("  total payload   %" PRIu64 " bytes (all checksums valid)\n",
              total);
  return 0;
}

int Ask(const std::string& path, const std::string& domain,
        const std::string& question) {
  auto engine = cqads::core::CqadsEngine::OpenSnapshot(path);
  if (!engine.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  auto result = engine.value()->AskInDomain(domain, question);
  if (!result.ok()) {
    std::fprintf(stderr, "ask failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              cqads::core::CanonicalAskResultString(result.value()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  if (cmd == "save") {
    const std::size_t ads = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 200;
    return Save(path, ads == 0 ? 200 : ads);
  }
  if (cmd == "inspect") return Inspect(path);
  if (cmd == "ask" && argc >= 5) {
    std::string question;
    for (int i = 4; i < argc; ++i) {
      if (!question.empty()) question += ' ';
      question += argv[i];
    }
    return Ask(path, argv[3], question);
  }
  return Usage();
}
