// Car-shopping scenario: walks the paper's running example end to end —
// error-tolerant parsing (misspellings, missing spaces, shorthand), Boolean
// questions (negation, mutually-exclusive values, contradictions), the
// generated SQL, and ranked partially-matched answers (Table 2 style).
#include <cstdio>

#include "datagen/world.h"

using cqads::core::CqadsEngine;
using cqads::datagen::World;
using cqads::datagen::WorldOptions;

namespace {

void ShowQuestion(const World& world, const std::string& question) {
  std::printf("\nQ: %s\n", question.c_str());
  auto parsed = world.engine().Parse("cars", question);
  if (!parsed.ok()) {
    std::printf("   parse error: %s\n", parsed.status().ToString().c_str());
    return;
  }
  const auto& p = parsed.value();
  for (const auto& repair : p.tags.segmentations) {
    std::printf("   repaired missing space: %s\n", repair.c_str());
  }
  for (const auto& repair : p.tags.corrections) {
    std::printf("   corrected spelling:     %s\n", repair.c_str());
  }
  for (const auto& repair : p.tags.shorthands) {
    std::printf("   resolved shorthand:     %s\n", repair.c_str());
  }
  std::printf("   interpretation: %s\n",
              p.assembled.contradiction
                  ? "search retrieved no results (contradictory criteria)"
                  : p.assembled.interpretation.c_str());
  std::printf("   SQL: %s\n", p.sql.c_str());

  auto result = world.engine().AskInDomain("cars", question);
  if (!result.ok() || result.value().contradiction) return;
  const auto& r = result.value();
  std::printf("   answers: %zu exact, %zu partial\n", r.exact_count,
              r.answers.size() - r.exact_count);
  const auto* table = world.table("cars");
  std::size_t shown = 0;
  for (const auto& a : r.answers) {
    if (shown++ >= 4) break;
    std::printf("     %s %s %s | $%s | %s%s\n",
                a.exact ? "[exact]  " : "[partial]",
                table->cell(a.row, 0).AsText().c_str(),
                table->cell(a.row, 1).AsText().c_str(),
                table->cell(a.row, 3).AsText().c_str(),
                table->cell(a.row, 5).AsText().c_str(),
                a.exact ? "" : (" | " + a.measure).c_str());
  }
}

}  // namespace

int main() {
  WorldOptions options;
  options.ads_per_domain = 500;
  auto world = World::Build(options);
  if (!world.ok()) return 1;

  std::printf("=== CQAds car-shopping walkthrough ===\n");
  const char* questions[] = {
      // Example 1 of the paper.
      "Do you have a 2 door red BMW?",
      "Cheapest 2dr mazda with automatic transmission",
      "I want a 4 wheel drive with less than 20k miles",
      // §4.2: user errors.
      "hondaaccord less than $9,000",
      "honda accrod with leather seats",
      // §4.2.2: incomplete question (Example 3).
      "Honda accord 2004",
      // §4.4: implicit Boolean questions (Example 6).
      "Any car priced below $7000 and not less than $2000",
      "I want a Toyota Corolla or a silver not manual Honda Accord",
      // Q3 of the Boolean survey: mutually-exclusive colors.
      "Show me black silver cars",
      // Contradiction: rule 1c.
      "accord price below 2000 and price above 9000",
      // Table 2's running example.
      "Find Honda Accord blue less than 15,000 dollars",
  };
  for (const char* q : questions) ShowQuestion(*world.value(), q);
  return 0;
}
