#!/usr/bin/env python3
"""Lint the BENCH_*.json perf artifacts before CI uploads them.

Every bench binary emits one BENCH_<name>.json; downstream perf-trajectory
tooling indexes them by commit. A malformed artifact (truncated write, a
bench that forgot the schema stamp, a NaN that serialized as garbage) would
poison that history silently — so the workflow runs this gate between the
bench smoke step and the artifact upload.

Contract, per file:
  * parses as a JSON object
  * "bench" is a non-empty string
  * "bench_schema_version" is an integer >= 1
  * "git_describe" is a non-empty string
  * at least one OTHER member is a finite number (a bench that measured
    nothing has no business uploading an artifact)

Usage: bench_json_lint.py FILE [FILE...]
Exits non-zero listing every violation; prints a per-file OK line otherwise.
Stdlib only.
"""

import json
import math
import sys


def lint(path):
    """Returns a list of violation messages for one artifact (empty = OK)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return ["unreadable or invalid JSON: %s" % exc]

    if not isinstance(doc, dict):
        return ["top-level value is %s, expected an object" % type(doc).__name__]

    problems = []
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        problems.append('"bench" must be a non-empty string, got %r' % (bench,))
    version = doc.get("bench_schema_version")
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        problems.append(
            '"bench_schema_version" must be an integer >= 1, got %r' % (version,)
        )
    describe = doc.get("git_describe")
    if not isinstance(describe, str) or not describe:
        problems.append(
            '"git_describe" must be a non-empty string, got %r' % (describe,)
        )

    metrics = [
        key
        for key, value in doc.items()
        if key != "bench_schema_version"
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    ]
    if not metrics:
        problems.append("no numeric metric found beyond the schema stamp")
    return problems


def main(argv):
    if len(argv) < 2:
        print("usage: bench_json_lint.py FILE [FILE...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        problems = lint(path)
        if problems:
            failures += 1
            for problem in problems:
                print("FAIL %s: %s" % (path, problem))
        else:
            print("ok   %s" % path)
    if failures:
        print("%d of %d artifacts failed the lint" % (failures, len(argv) - 1))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
